package mip

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/lp"
)

// This file implements the root-node cutting-plane machinery and the
// shared cut pool: lifted cover cuts separated from knapsack-form rows
// (the allocator's K/needsSpill-style capacity rows, and the
// multi-knapsack benchmark family) and clique cuts separated from a
// conflict graph built out of set-packing rows (the allocator's
// one_color / one_place / arith_bank families). Every cut is globally
// valid — derived from row structure and 0-1 integrality alone, never
// from node bounds — so cuts can be shared freely between the root LP
// and all tree-search workers.

// cut is one globally valid inequality lo <= sum vals*cols <= hi.
type cut struct {
	cols []int
	vals []float64
	lo   float64
	hi   float64
}

// violation returns how far x is outside the cut's bounds.
func (c *cut) violation(x []float64) float64 {
	act := 0.0
	for i, col := range c.cols {
		act += c.vals[i] * x[col]
	}
	if act > c.hi {
		return act - c.hi
	}
	if act < c.lo {
		return c.lo - act
	}
	return 0
}

// key canonicalizes a cut for pool deduplication.
func (c *cut) key() string {
	type term struct {
		col int
		val float64
	}
	terms := make([]term, len(c.cols))
	for i := range c.cols {
		terms[i] = term{c.cols[i], c.vals[i]}
	}
	sort.Slice(terms, func(a, b int) bool { return terms[a].col < terms[b].col })
	var b strings.Builder
	for _, t := range terms {
		b.WriteString(strconv.Itoa(t.col))
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(t.val, 'g', -1, 64))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(c.lo, 'g', -1, 64))
	b.WriteByte('|')
	b.WriteString(strconv.FormatFloat(c.hi, 'g', -1, 64))
	return b.String()
}

// maxPoolCuts is the absolute pool bound; treeCutBudget additionally
// bounds how many cuts the tree may add beyond the root cuts, so
// node-separated covers cannot bloat every node LP.
const (
	maxPoolCuts   = 512
	treeCutBudget = 64
)

// cutPool is the concurrency-safe store of cuts shared by the root
// loop and the diving workers. It is append-only: workers apply pool
// cuts to their problem clones strictly in pool order, so any two
// clones' row sets are prefixes of one another beyond the base rows —
// which keeps basis snapshots exchangeable through the node pool (a
// snapshot from a shorter prefix loads into a longer one with the new
// rows' slacks basic).
type cutPool struct {
	mu   sync.RWMutex
	cuts []cut
	seen map[string]bool
}

func newCutPool() *cutPool { return &cutPool{seen: map[string]bool{}} }

// add appends cuts not already pooled and reports how many were new.
func (cp *cutPool) add(cuts []cut) int {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	added := 0
	for i := range cuts {
		if len(cp.cuts) >= maxPoolCuts {
			break
		}
		k := cuts[i].key()
		if cp.seen[k] {
			continue
		}
		cp.seen[k] = true
		cp.cuts = append(cp.cuts, cuts[i])
		added++
	}
	return added
}

// tight returns copies of the pool cuts binding at x within tol. The
// root loop uses it once, before the tree starts, to drop slack cuts:
// a constraint inactive at the optimal vertex has zero dual weight, so
// the vertex (and the bound) survives its removal, while every node LP
// pays eta-file work per row carried.
func (cp *cutPool) tight(x []float64, tol float64) []cut {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	var out []cut
	for i := range cp.cuts {
		c := &cp.cuts[i]
		act := 0.0
		for k, col := range c.cols {
			act += c.vals[k] * x[col]
		}
		if (!math.IsInf(c.lo, 0) && act <= c.lo+tol) ||
			(!math.IsInf(c.hi, 0) && act >= c.hi-tol) {
			out = append(out, cp.cuts[i])
		}
	}
	return out
}

// export snapshots the pool as exchangeable CutRow values; the compile
// cache stores them so a later solve of the same feasible region can
// replay the pool through Options.SeedCuts.
func (cp *cutPool) export() []CutRow {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]CutRow, len(cp.cuts))
	for i := range cp.cuts {
		out[i] = CutRow{
			Cols: append([]int(nil), cp.cuts[i].cols...),
			Vals: append([]float64(nil), cp.cuts[i].vals...),
			Lo:   cp.cuts[i].lo,
			Hi:   cp.cuts[i].hi,
		}
	}
	return out
}

func (cp *cutPool) len() int {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return len(cp.cuts)
}

// apply appends pool cuts [from, len) to p and returns the new prefix
// length. The pool is append-only and entries are immutable once
// added, so a snapshot of the slice header taken under the lock can be
// walked without it (a concurrent add may grow a new backing array,
// but this snapshot's entries never move or change).
func (cp *cutPool) apply(p *lp.Problem, from int) int {
	cp.mu.RLock()
	cuts := cp.cuts
	cp.mu.RUnlock()
	for i := from; i < len(cuts); i++ {
		c := &cuts[i]
		p.AddRow(c.lo, c.hi, c.cols, c.vals)
	}
	return len(cuts)
}

// objGranularity detects objective-lattice structure: when every
// column with a nonzero objective coefficient is integer-constrained
// and its coefficient is an integer, every integer-feasible point has
// an objective in g·Z for g the gcd of the coefficients. Node bounds
// can then be rounded up to the lattice before pruning — the implicit
// objective cut. Returns 0 when the structure is absent.
func objGranularity(p *lp.Problem, integer []bool) float64 {
	var g int64
	for j := 0; j < p.NumCols(); j++ {
		c := p.Obj(j)
		if c == 0 {
			continue
		}
		if !integer[j] {
			return 0
		}
		r := math.Round(c)
		if math.Abs(c-r) > 1e-9 || math.Abs(r) > 1e12 {
			return 0
		}
		a := int64(math.Abs(r))
		for a != 0 {
			g, a = a, g%a
		}
	}
	return float64(g)
}

// rowView is a row-wise snapshot of the base problem's constraint
// matrix (lp.Problem stores columns), shared read-only by the root
// separator and all workers.
type rowView struct {
	cols [][]int
	vals [][]float64
	lo   []float64
	hi   []float64
}

func newRowView(p *lp.Problem) *rowView {
	m := p.NumRows()
	rv := &rowView{
		cols: make([][]int, m),
		vals: make([][]float64, m),
		lo:   make([]float64, m),
		hi:   make([]float64, m),
	}
	for r := 0; r < m; r++ {
		rv.lo[r], rv.hi[r] = p.RowBounds(r)
	}
	for j := 0; j < p.NumCols(); j++ {
		for _, nz := range p.Col(j) {
			rv.cols[nz.Row] = append(rv.cols[nz.Row], j)
			rv.vals[nz.Row] = append(rv.vals[nz.Row], nz.Val)
		}
	}
	return rv
}

// separator holds the immutable separation context: the base row view,
// which columns are binary in the ROOT problem (cut validity must not
// depend on node-tightened bounds), and the conflict graph for clique
// cuts.
type separator struct {
	rows     *rowView
	binary   []bool
	neighbor []map[int]bool // conflict graph over binary columns
	hasConfl bool
}

func newSeparator(p *lp.Problem, integer []bool) *separator {
	n := p.NumCols()
	s := &separator{rows: newRowView(p), binary: make([]bool, n)}
	for j := 0; j < n; j++ {
		lo, hi := p.Bounds(j)
		s.binary[j] = integer[j] && lo == 0 && hi == 1
	}
	s.buildConflicts()
	return s
}

// buildConflicts derives pairwise conflicts from set-packing rows: all
// columns binary with coefficient 1 and an upper bound of 1 (this
// covers both sum <= 1 and sum = 1 rows, e.g. the allocator's
// one_color / one_place / arith_bank families). Two binaries in such a
// row can never both be 1 in an integer point.
func (s *separator) buildConflicts() {
	for r := range s.rows.cols {
		if s.rows.hi[r] != 1 {
			continue
		}
		cols := s.rows.cols[r]
		if len(cols) < 2 || len(cols) > 64 {
			continue
		}
		ok := true
		for i, col := range cols {
			if !s.binary[col] || s.rows.vals[r][i] != 1 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if s.neighbor == nil {
			s.neighbor = make([]map[int]bool, len(s.binary))
		}
		for i := 0; i < len(cols); i++ {
			for j := i + 1; j < len(cols); j++ {
				a, b := cols[i], cols[j]
				if s.neighbor[a] == nil {
					s.neighbor[a] = map[int]bool{}
				}
				if s.neighbor[b] == nil {
					s.neighbor[b] = map[int]bool{}
				}
				s.neighbor[a][b] = true
				s.neighbor[b][a] = true
				s.hasConfl = true
			}
		}
	}
}

// sepTol is the minimum violation for a cut to be worth adding.
const sepTol = 1e-4

// separate returns up to maxCuts violated cuts for the fractional
// point x, most violated first: lifted covers from every knapsack-form
// base row, then cliques from the conflict graph.
func (s *separator) separate(x []float64, maxCuts int) []cut {
	type scored struct {
		c    cut
		viol float64
	}
	var out []scored
	for r := range s.rows.cols {
		if c, viol, ok := s.coverFromRow(r, x); ok {
			out = append(out, scored{c, viol})
		}
	}
	for _, c := range s.cliques(x) {
		out = append(out, scored{c, c.violation(x)})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].viol > out[j].viol })
	if len(out) > maxCuts {
		out = out[:maxCuts]
	}
	cuts := make([]cut, len(out))
	for i := range out {
		cuts[i] = out[i].c
	}
	return cuts
}

// coverFromRow separates one lifted cover cut from row r if the row
// has a knapsack form over binaries: every column binary, and a finite
// upper bound after complementing negative coefficients (a finite
// lower bound is handled by negating the row first). Returns the most
// violated of the two sides.
func (s *separator) coverFromRow(r int, x []float64) (cut, float64, bool) {
	cols := s.rows.cols[r]
	if len(cols) < 2 {
		return cut{}, 0, false
	}
	for _, col := range cols {
		if !s.binary[col] {
			return cut{}, 0, false
		}
	}
	vals := s.rows.vals[r]
	if !math.IsInf(s.rows.hi[r], 1) {
		if c, viol, ok := s.coverFromKnapsack(cols, vals, s.rows.hi[r], x); ok {
			return c, viol, true
		}
	}
	if !math.IsInf(s.rows.lo[r], -1) {
		neg := make([]float64, len(vals))
		for i, v := range vals {
			neg[i] = -v
		}
		if c, viol, ok := s.coverFromKnapsack(cols, neg, -s.rows.lo[r], x); ok {
			return c, viol, true
		}
	}
	return cut{}, 0, false
}

// coverFromKnapsack separates a lifted (extended) cover cut from
// sum a_j x_j <= b over binaries. Negative coefficients are
// complemented (y = 1-x), a greedy minimal cover is built against the
// fractional point, extended by every column whose weight dominates
// the cover, and translated back to original variables.
func (s *separator) coverFromKnapsack(cols []int, a []float64, b float64, x []float64) (cut, float64, bool) {
	// Complement to all-positive weights: z_j = x_j (a_j > 0) or
	// 1 - x_j (a_j < 0); rhs b' = b - sum_{a_j<0} a_j.
	type item struct {
		col  int
		w    float64 // positive weight
		z    float64 // complemented fractional value
		comp bool
	}
	items := make([]item, 0, len(cols))
	bp := b
	for i, col := range cols {
		switch {
		case a[i] > 0:
			items = append(items, item{col, a[i], x[col], false})
		case a[i] < 0:
			bp -= a[i]
			items = append(items, item{col, -a[i], 1 - x[col], true})
		}
	}
	if bp < 0 || len(items) < 2 {
		return cut{}, 0, false // infeasible row or degenerate
	}
	total := 0.0
	for i := range items {
		total += items[i].w
	}
	if total <= bp+1e-9 {
		return cut{}, 0, false // row can never bind: no cover exists
	}
	// Greedy cover: take items in increasing (1-z)/w — cheapest slack
	// per unit weight — until the weight exceeds b'.
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(p, q int) bool {
		ip, iq := &items[order[p]], &items[order[q]]
		return (1-ip.z)*iq.w < (1-iq.z)*ip.w
	})
	var cover []int
	w := 0.0
	for _, i := range order {
		cover = append(cover, i)
		w += items[i].w
		if w > bp+1e-9 {
			break
		}
	}
	if w <= bp+1e-9 {
		return cut{}, 0, false
	}
	// Minimalize: drop members whose removal keeps it a cover (largest
	// weights are kept; iterate in increasing weight).
	sort.SliceStable(cover, func(p, q int) bool { return items[cover[p]].w < items[cover[q]].w })
	kept := cover[:0]
	for _, i := range cover {
		if w-items[i].w > bp+1e-9 {
			w -= items[i].w
			continue
		}
		kept = append(kept, i)
	}
	cover = kept
	if len(cover) < 2 {
		return cut{}, 0, false
	}
	// Violation check on the cover itself: sum z > |C| - 1.
	lhs := 0.0
	maxW := 0.0
	inCover := make(map[int]bool, len(cover))
	for _, i := range cover {
		lhs += items[i].z
		if items[i].w > maxW {
			maxW = items[i].w
		}
		inCover[i] = true
	}
	rhs := float64(len(cover) - 1)
	if lhs <= rhs+sepTol {
		return cut{}, 0, false
	}
	// Extended lifting: any column whose weight dominates every cover
	// member joins the left-hand side at the same rhs. (Valid for any
	// cover: |C| members of the extension always outweigh C.)
	ext := append([]int(nil), cover...)
	for i := range items {
		if !inCover[i] && items[i].w >= maxW {
			ext = append(ext, i)
		}
	}
	// Translate back: z = x or 1-x. sum_{E} z <= rhs becomes
	// sum_{plain} x - sum_{comp} x <= rhs - |comp in E|.
	c := cut{lo: math.Inf(-1)}
	compCount := 0
	for _, i := range ext {
		if items[i].comp {
			c.cols = append(c.cols, items[i].col)
			c.vals = append(c.vals, -1)
			compCount++
		} else {
			c.cols = append(c.cols, items[i].col)
			c.vals = append(c.vals, 1)
		}
	}
	c.hi = rhs - float64(compCount)
	return c, lhs - rhs, true
}

// cliques separates violated clique cuts by greedy growth in the
// conflict graph, seeded at the most fractional columns. A clique that
// spans several set-packing rows yields sum x <= 1, which no single
// source row implies.
func (s *separator) cliques(x []float64) []cut {
	if !s.hasConfl {
		return nil
	}
	var cand []int
	for j, nb := range s.neighbor {
		if nb != nil && x[j] > 0.05 {
			cand = append(cand, j)
		}
	}
	if len(cand) < 3 {
		return nil
	}
	sort.SliceStable(cand, func(a, b int) bool { return x[cand[a]] > x[cand[b]] })
	if len(cand) > 200 {
		cand = cand[:200]
	}
	var out []cut
	used := make(map[int]bool)
	for _, seed := range cand {
		if used[seed] {
			continue
		}
		clique := []int{seed}
		sum := x[seed]
		for _, j := range cand {
			if j == seed || used[j] {
				continue
			}
			ok := true
			for _, k := range clique {
				if !s.neighbor[j][k] {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, j)
				sum += x[j]
			}
		}
		// Size-2 "cliques" are existing rows; only larger ones add
		// information, and only violated ones are worth LP rows.
		if len(clique) < 3 || sum <= 1+sepTol {
			continue
		}
		for _, j := range clique {
			used[j] = true
		}
		c := cut{lo: math.Inf(-1), hi: 1}
		for _, j := range clique {
			c.cols = append(c.cols, j)
			c.vals = append(c.vals, 1)
		}
		out = append(out, c)
		if len(out) >= 16 {
			break
		}
	}
	return out
}

package mip

import (
	"context"
	"math"
	"time"

	"repro/internal/lp"
)

// Root diving heuristic, run once between the cutting-plane loop and
// the tree search (and only when cuts are enabled — with cuts disabled
// the solver must reproduce the plain search exactly). The tree prunes
// against `incumbent - gap`, so an early near-optimal incumbent is
// worth more nodes than any cut family; the baseline search often finds
// its final incumbent only after half the tree.

// rootDiveBudget caps the LP re-solves one dive may spend.
const rootDiveBudget = 64

// rootDive rounds its way from the root LP point to an integer point:
// it repeatedly fixes the most-nearly-integral fractional column to the
// nearest integer and re-solves warm-started, then polishes the result
// with 1-flip and 2-swap local search over the binary columns. guide is
// the problem the dive LPs run on (the cut-strengthened root); feas is
// the original problem candidates are verified against. Returns the
// candidate, its objective, the LP iterations spent, and whether a
// feasible point was reached.
func rootDive(guide, feas *lp.Problem, integer []bool, sol *lp.Solution, lpo *lp.Options) ([]float64, float64, int, bool) {
	q := guide.Clone()
	cur := sol
	iters := 0
	for pass := 0; pass < rootDiveBudget; pass++ {
		if lpo != nil && !lpo.Deadline.IsZero() && time.Now().After(lpo.Deadline) {
			return nil, 0, iters, false // out of budget mid-dive
		}
		// Most-nearly-integral fractional integer column.
		fix, best := -1, 0.5+1e-9
		for j, isInt := range integer {
			if !isInt {
				continue
			}
			f := math.Abs(cur.X[j] - math.Round(cur.X[j]))
			if f > 1e-6 && f < best {
				fix, best = j, f
			}
		}
		if fix < 0 {
			break // integral
		}
		v := math.Round(cur.X[fix])
		q.SetBounds(fix, v, v)
		next, err := q.Solve(warmOpts(lpo, cur.Basis))
		if err != nil || next.Status != lp.Optimal {
			return nil, 0, iters, false
		}
		iters += next.Iters
		cur = next
	}
	x := append([]float64(nil), cur.X...)
	for j, isInt := range integer {
		if isInt {
			x[j] = math.Round(x[j])
		}
	}
	if !Feasible(feas, x, 1e-6) {
		return nil, 0, iters, false
	}
	obj := polish(feas, integer, x)
	return x, obj, iters, true
}

// localBranch tries to improve an incumbent by solving the radius-k
// neighborhood of it as a sub-MIP with a small node budget — the local
// branching device: one extra row Σ_{x̂=1}(1-x_j) + Σ_{x̂=0} x_j <= k
// over the binaries restricts the search to points within Hamming
// distance k of the incumbent, where near-optimal exchanges live. The
// sub-solve runs with cuts disabled (no recursion) and its tree is
// heuristic effort, not main-tree nodes; its LP iterations are
// reported. Returns an improved point when one is found.
func localBranch(ctx context.Context, p *lp.Problem, integer []bool, x []float64, obj float64, lpo *lp.Options, budget time.Duration) ([]float64, float64, int, bool) {
	// A small ball keeps the sub-MIP far easier than the full problem
	// while still holding the profitable exchanges (the paper-scale
	// instances improve by swapping a handful of assignments at a time);
	// large radii degrade into re-solving the whole model.
	const radius = 7
	var cols []int
	var vals []float64
	ones := 0.0
	for j, isInt := range integer {
		if !isInt {
			continue
		}
		lo, hi := p.Bounds(j)
		if lo != 0 || hi != 1 {
			continue
		}
		cols = append(cols, j)
		if x[j] > 0.5 {
			vals = append(vals, -1)
			ones++
		} else {
			vals = append(vals, 1)
		}
	}
	if len(cols) == 0 {
		return nil, 0, 0, false
	}
	q := p.Clone()
	q.AddRow(math.Inf(-1), radius-ones, cols, vals)
	res, err := Solve(q, integer, &Options{
		Workers:   1,
		CutRounds: -1,
		MaxNodes:  3500,
		Time:      budget,
		LP:        lpo,
		Ctx:       ctx,
		seedX:     x,
		seedObj:   obj,
	})
	if err != nil || res.X == nil || res.Obj >= obj-1e-9 {
		iters := 0
		if res != nil {
			iters = res.LPIters
		}
		return nil, 0, iters, false
	}
	cand := append([]float64(nil), res.X...)
	if !Feasible(p, cand, 1e-6) {
		return nil, 0, res.LPIters, false
	}
	return cand, res.Obj, res.LPIters, true
}

// polish improves an integer-feasible point in place with first-
// improvement local search over the binary columns: single flips, then
// 1-out/1-in swaps. Both moves keep row activities incrementally, so a
// pass is cheap; sizes are capped so large models (which bring their
// own domain heuristic) skip the quadratic part.
func polish(p *lp.Problem, integer []bool, x []float64) float64 {
	n := p.NumCols()
	m := p.NumRows()
	act := make([]float64, m)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Obj(j) * x[j]
		for _, nz := range p.Col(j) {
			act[nz.Row] += nz.Val * x[j]
		}
	}
	var bins []int
	for j := 0; j < n; j++ {
		lo, hi := p.Bounds(j)
		if integer[j] && lo == 0 && hi == 1 {
			bins = append(bins, j)
		}
	}
	if len(bins) > 5000 {
		return obj
	}
	// delta applies x[j] += d when every touched row stays in bounds.
	delta := func(j int, d float64) bool {
		for _, nz := range p.Col(j) {
			v := act[nz.Row] + nz.Val*d
			lo, hi := p.RowBounds(nz.Row)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		for _, nz := range p.Col(j) {
			act[nz.Row] += nz.Val * d
		}
		x[j] += d
		return true
	}
	for pass := 0; pass < 8; pass++ {
		improved := false
		for _, j := range bins {
			d := 1 - 2*x[j] // 0→1 or 1→0
			if p.Obj(j)*d < -1e-9 && delta(j, d) {
				obj += p.Obj(j) * d
				improved = true
			}
		}
		if len(bins) <= 400 {
			for _, j := range bins {
				if x[j] != 1 {
					continue
				}
				for _, k := range bins {
					if x[k] != 0 || p.Obj(k)-p.Obj(j) >= -1e-9 {
						continue
					}
					// Take j out, then try k in; undo if k does not fit.
					if !delta(j, -1) {
						continue
					}
					if delta(k, 1) {
						obj += p.Obj(k) - p.Obj(j)
						improved = true
						break
					}
					delta(j, 1)
				}
			}
		}
		if !improved {
			break
		}
	}
	return obj
}

package mip

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/lp"
)

// randomZeroOne builds a seeded random 0-1 program of the shape the
// exhaustive cross-check uses, a little larger.
func randomZeroOne(rng *rand.Rand) *lp.Problem {
	n := 6 + rng.Intn(10)
	m := 3 + rng.Intn(6)
	p := lp.NewProblem()
	cols := make([]int, n)
	for j := 0; j < n; j++ {
		cols[j] = p.AddCol(float64(rng.Intn(11)-5), 0, 1)
	}
	for r := 0; r < m; r++ {
		var rc []int
		var rv []float64
		for j := 0; j < n; j++ {
			if v := float64(rng.Intn(5) - 2); v != 0 {
				rc = append(rc, j)
				rv = append(rv, v)
			}
		}
		switch rng.Intn(3) {
		case 0:
			p.AddRow(math.Inf(-1), float64(rng.Intn(5)-1), rc, rv)
		case 1:
			p.AddRow(float64(-rng.Intn(3)), math.Inf(1), rc, rv)
		default:
			v := float64(rng.Intn(3))
			p.AddRow(v, v, rc, rv)
		}
	}
	return p
}

// TestWorkersEquivalence: Workers=8 must reach the same status as
// Workers=1 and an objective equal within the optimality gap, on a
// suite of seeded random 0-1 programs.
func TestWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		p := randomZeroOne(rng)
		serial, err := Solve(p, nil, &Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		par, err := Solve(p, nil, &Options{Workers: 8})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if serial.Status != par.Status {
			t.Fatalf("trial %d: serial %v vs parallel %v", trial, serial.Status, par.Status)
		}
		if serial.Status != Optimal {
			continue
		}
		tol := 1e-4*math.Max(1, math.Abs(serial.Obj)) + 1e-9
		if math.Abs(serial.Obj-par.Obj) > tol {
			t.Fatalf("trial %d: serial obj %v vs parallel obj %v (tol %v)", trial, serial.Obj, par.Obj, tol)
		}
		if !Feasible(p, par.X, 1e-5) {
			t.Fatalf("trial %d: parallel incumbent infeasible", trial)
		}
	}
}

// TestWorkersVsExhaustive: the parallel search against brute force, so
// parallelism cannot hide a wrong incumbent or a wrong bound proof.
func TestWorkersVsExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(5)
		p := lp.NewProblem()
		obj := make([]float64, n)
		for j := 0; j < n; j++ {
			obj[j] = float64(rng.Intn(11) - 5)
			p.AddCol(obj[j], 0, 1)
		}
		A := make([][]float64, m)
		rowLo := make([]float64, m)
		rowHi := make([]float64, m)
		for r := 0; r < m; r++ {
			A[r] = make([]float64, n)
			var rc []int
			var rv []float64
			for j := 0; j < n; j++ {
				v := float64(rng.Intn(5) - 2)
				A[r][j] = v
				if v != 0 {
					rc = append(rc, j)
					rv = append(rv, v)
				}
			}
			switch rng.Intn(3) {
			case 0:
				rowLo[r], rowHi[r] = math.Inf(-1), float64(rng.Intn(5)-1)
			case 1:
				rowLo[r], rowHi[r] = float64(-rng.Intn(3)), math.Inf(1)
			default:
				v := float64(rng.Intn(3))
				rowLo[r], rowHi[r] = v, v
			}
			p.AddRow(rowLo[r], rowHi[r], rc, rv)
		}
		res, err := Solve(p, nil, &Options{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			ok := true
			for r := 0; r < m && ok; r++ {
				ax := 0.0
				for j := 0; j < n; j++ {
					if mask>>j&1 == 1 {
						ax += A[r][j]
					}
				}
				if ax < rowLo[r]-1e-9 || ax > rowHi[r]+1e-9 {
					ok = false
				}
			}
			if !ok {
				continue
			}
			v := 0.0
			for j := 0; j < n; j++ {
				if mask>>j&1 == 1 {
					v += obj[j]
				}
			}
			if v < best {
				best = v
			}
		}
		if math.IsInf(best, 1) {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: brute force infeasible, solver %v", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v (brute force %v)", trial, res.Status, best)
		}
		if math.Abs(res.Obj-best) > 1e-4*math.Max(1, math.Abs(best)) {
			t.Fatalf("trial %d: solver obj %v, brute force %v", trial, res.Obj, best)
		}
	}
}

// TestWorkerPoolStress hammers the worker pool — meant to run under
// -race. Concurrent Solve calls on a shared problem also exercise the
// no-mutation guarantee.
func TestWorkerPoolStress(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := randomZeroOne(rng)
	ref, err := Solve(p, nil, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				res, err := Solve(p, nil, &Options{Workers: 8})
				if err != nil {
					errs <- err
					return
				}
				if res.Status != ref.Status {
					t.Errorf("status %v, want %v", res.Status, ref.Status)
					return
				}
				if ref.Status == Optimal {
					tol := 1e-4*math.Max(1, math.Abs(ref.Obj)) + 1e-9
					if math.Abs(res.Obj-ref.Obj) > tol {
						t.Errorf("obj %v, want %v", res.Obj, ref.Obj)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestHeuristicSerialized: with Workers > 1 the Heuristic hook must
// never run concurrently with itself.
func TestHeuristicSerialized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := randomZeroOne(rng)
	var mu sync.Mutex
	inside := false
	opts := &Options{
		Workers: 8,
		Heuristic: func(x []float64) ([]float64, bool) {
			mu.Lock()
			if inside {
				mu.Unlock()
				t.Error("heuristic re-entered concurrently")
				return nil, false
			}
			inside = true
			mu.Unlock()
			mu.Lock()
			inside = false
			mu.Unlock()
			return nil, false
		},
	}
	if _, err := Solve(p, nil, opts); err != nil {
		t.Fatal(err)
	}
}

// TestSolveDoesNotMutateProblem: the parallel engine searches clones;
// the caller's problem must come back bit-identical.
func TestSolveDoesNotMutateProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := randomZeroOne(rng)
	type b struct{ lo, hi, obj float64 }
	before := make([]b, p.NumCols())
	for j := range before {
		lo, hi := p.Bounds(j)
		before[j] = b{lo, hi, p.Obj(j)}
	}
	if _, err := Solve(p, nil, &Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	for j, want := range before {
		lo, hi := p.Bounds(j)
		if lo != want.lo || hi != want.hi || p.Obj(j) != want.obj {
			t.Fatalf("column %d mutated: [%v,%v] obj %v, want [%v,%v] obj %v",
				j, lo, hi, p.Obj(j), want.lo, want.hi, want.obj)
		}
	}
}

// Package mip implements a 0-1 / integer branch-and-bound solver on top
// of the lp package — the stand-in for CPLEX (§5, §11 of the paper).
// The paper solves its models to within 0.01% of optimal; that is this
// solver's default relative gap as well.
//
// The search runs as a shared best-bound node pool drained by N worker
// goroutines (Options.Workers). Each worker owns a clone of the
// problem, replays a node's bound-change path onto it, and solves the
// node LP warm-started from the parent's basis; after branching it
// dives depth-first into the nearer child (keeping the basis in hand)
// while the sibling goes back to the pool.
package mip

import (
	"math"
	"runtime"
	"time"

	"repro/internal/lp"
)

// Options tunes the search.
type Options struct {
	Gap      float64       // relative optimality gap; default 1e-4 (0.01%)
	MaxNodes int           // node budget; default 200000
	Time     time.Duration // wall-clock budget; default 5 minutes
	LP       *lp.Options   // per-node LP options
	Workers  int           // parallel tree-search workers; default GOMAXPROCS

	// ObjOffset is a constant added to the objective for gap purposes
	// only: callers that moved fixed costs out of the LP pass it so the
	// relative gap is measured against the true total.
	ObjOffset float64

	// Priority orders branching: among fractional integer columns,
	// those with the highest priority value are branched first. Nil
	// means uniform.
	Priority []int

	// Heuristic, when set, is called at every node whose LP solution
	// still has fractional integer columns. It may return a feasible
	// completion of x (a full assignment); the solver verifies
	// feasibility and uses it as an incumbent. This hook lets domain
	// code finish symmetric subproblems (e.g. register colors)
	// combinatorially. Calls are serialized by the solver, so the hook
	// need not be goroutine-safe even with Workers > 1.
	Heuristic func(x []float64) ([]float64, bool)
}

func (o *Options) fill() {
	if o.Gap == 0 {
		o.Gap = 1e-4
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.Time == 0 {
		o.Time = 5 * time.Minute
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Status of the MIP solve.
type Status int

// Statuses.
const (
	Optimal Status = iota // incumbent proven within gap
	Infeasible
	NodeLimit // best incumbent returned, gap not proven
	TimeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return "time-limit"
	}
}

// Result reports the solve outcome together with the statistics that
// Figure 7 of the paper tabulates (root relaxation time, total integer
// solve time).
type Result struct {
	Status   Status
	X        []float64
	Obj      float64
	RootObj  float64
	RootTime time.Duration
	Time     time.Duration
	Nodes    int
	LPIters  int
	Workers  int // tree-search workers used
}

// Solve minimizes p with the integrality constraint applied to the
// columns where integer[j] is true (pass nil for all-integer). The
// problem itself is never mutated: the root relaxation reads it and
// every worker searches on its own clone.
func Solve(p *lp.Problem, integer []bool, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	o.fill()
	n := p.NumCols()
	if integer == nil {
		integer = make([]bool, n)
		for j := range integer {
			integer[j] = true
		}
	}
	start := time.Now()
	res := &Result{Obj: math.Inf(1), Workers: o.Workers}

	// Root relaxation.
	rootStart := time.Now()
	rootSol, err := p.Solve(o.LP)
	res.RootTime = time.Since(rootStart)
	if err != nil {
		return nil, err
	}
	res.LPIters += rootSol.Iters
	switch rootSol.Status {
	case lp.Infeasible:
		res.Status = Infeasible
		res.Time = time.Since(start)
		return res, nil
	case lp.Unbounded:
		return nil, errUnbounded
	case lp.IterLimit:
		return nil, errRootIterLimit
	}
	res.RootObj = rootSol.Obj

	e := newEngine(p, integer, &o, start)
	// Rounding heuristic for a quick incumbent.
	if x, obj, ok := roundFeasible(p, integer, rootSol.X); ok {
		e.offerIncumbent(obj, x)
	}
	e.run(rootSol, res)
	res.Time = time.Since(start)
	return res, e.err
}

// roundFeasible rounds the integer components of x and checks the
// result against the rows; it returns the candidate when feasible.
func roundFeasible(p *lp.Problem, integer []bool, x []float64) ([]float64, float64, bool) {
	n := p.NumCols()
	cand := append([]float64(nil), x...)
	for j := 0; j < n; j++ {
		if integer[j] {
			cand[j] = math.Round(cand[j])
			lo, hi := p.Bounds(j)
			if cand[j] < lo || cand[j] > hi {
				return nil, 0, false
			}
		}
	}
	if !Feasible(p, cand, 1e-6) {
		return nil, 0, false
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Obj(j) * cand[j]
	}
	return cand, obj, true
}

// Feasible checks a point against all rows and bounds of p.
func Feasible(p *lp.Problem, x []float64, tol float64) bool {
	return feasibleScratch(p, x, tol, nil)
}

// feasibleScratch is Feasible with a caller-owned row-activity scratch
// slice, so hot callers (the search workers) do not allocate per check.
func feasibleScratch(p *lp.Problem, x []float64, tol float64, act []float64) bool {
	n := p.NumCols()
	m := p.NumRows()
	if cap(act) < m {
		act = make([]float64, m)
	} else {
		act = act[:m]
		for i := range act {
			act[i] = 0
		}
	}
	for j := 0; j < n; j++ {
		lo, hi := p.Bounds(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			return false
		}
		for _, nz := range p.Col(j) {
			act[nz.Row] += nz.Val * x[j]
		}
	}
	for r := 0; r < m; r++ {
		lo, hi := p.RowBounds(r)
		if act[r] < lo-tol || act[r] > hi+tol {
			return false
		}
	}
	return true
}

// Package mip implements a 0-1 / integer branch-and-bound solver on top
// of the lp package — the stand-in for CPLEX (§5, §11 of the paper).
// The paper solves its models to within 0.01% of optimal; that is this
// solver's default relative gap as well.
package mip

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
)

// Options tunes the search.
type Options struct {
	Gap      float64       // relative optimality gap; default 1e-4 (0.01%)
	MaxNodes int           // node budget; default 200000
	Time     time.Duration // wall-clock budget; default 5 minutes
	LP       *lp.Options   // per-node LP options

	// ObjOffset is a constant added to the objective for gap purposes
	// only: callers that moved fixed costs out of the LP pass it so the
	// relative gap is measured against the true total.
	ObjOffset float64

	// Priority orders branching: among fractional integer columns,
	// those with the highest priority value are branched first. Nil
	// means uniform.
	Priority []int

	// Heuristic, when set, is called at every node whose LP solution
	// still has fractional integer columns. It may return a feasible
	// completion of x (a full assignment); the solver verifies
	// feasibility and uses it as an incumbent. This hook lets domain
	// code finish symmetric subproblems (e.g. register colors)
	// combinatorially.
	Heuristic func(x []float64) ([]float64, bool)
}

func (o *Options) fill() {
	if o.Gap == 0 {
		o.Gap = 1e-4
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 200000
	}
	if o.Time == 0 {
		o.Time = 5 * time.Minute
	}
}

// Status of the MIP solve.
type Status int

// Statuses.
const (
	Optimal Status = iota // incumbent proven within gap
	Infeasible
	NodeLimit // best incumbent returned, gap not proven
	TimeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return "time-limit"
	}
}

// Result reports the solve outcome together with the statistics that
// Figure 7 of the paper tabulates (root relaxation time, total integer
// solve time).
type Result struct {
	Status   Status
	X        []float64
	Obj      float64
	RootObj  float64
	RootTime time.Duration
	Time     time.Duration
	Nodes    int
	LPIters  int
}

// Solve minimizes p with the integrality constraint applied to the
// columns where integer[j] is true (pass nil for all-integer). The
// problem's bounds are mutated during the search and restored before
// returning.
func Solve(p *lp.Problem, integer []bool, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	opts.fill()
	n := p.NumCols()
	if integer == nil {
		integer = make([]bool, n)
		for j := range integer {
			integer[j] = true
		}
	}
	start := time.Now()
	res := &Result{Obj: math.Inf(1)}

	// Root relaxation.
	rootStart := time.Now()
	rootSol, err := p.Solve(opts.LP)
	res.RootTime = time.Since(rootStart)
	if err != nil {
		return nil, err
	}
	res.LPIters += rootSol.Iters
	switch rootSol.Status {
	case lp.Infeasible:
		res.Status = Infeasible
		res.Time = time.Since(start)
		return res, nil
	case lp.Unbounded:
		return nil, fmt.Errorf("mip: relaxation is unbounded")
	case lp.IterLimit:
		return nil, fmt.Errorf("mip: root LP hit iteration limit")
	}
	res.RootObj = rootSol.Obj

	// Rounding heuristic for a quick incumbent.
	if x, obj, ok := roundFeasible(p, integer, rootSol.X); ok {
		res.X, res.Obj = x, obj
	}

	// Depth-first branch and bound. Each stack entry owns a bound
	// change to apply (relative to its parent) and remembers how to
	// undo it.
	type node struct {
		col     int
		lo, hi  float64 // new bounds for col
		oldLo   float64
		oldHi   float64
		bound   float64 // parent LP objective (lower bound)
		applied bool
		depth   int
	}
	stack := []*node{{col: -1, bound: rootSol.Obj}}

	var undo []*node // applied bound changes, for restoration
	restoreTo := func(depth int) {
		for len(undo) > depth {
			nd := undo[len(undo)-1]
			undo = undo[:len(undo)-1]
			p.SetBounds(nd.col, nd.oldLo, nd.oldHi)
		}
	}
	defer restoreTo(0)

	status := Status(Optimal)
	proven := false

	for len(stack) > 0 {
		if res.Nodes >= opts.MaxNodes {
			status = NodeLimit
			break
		}
		if time.Since(start) > opts.Time {
			status = TimeLimit
			break
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		restoreTo(nd.depth)
		if nd.col >= 0 {
			nd.oldLo, nd.oldHi = p.Bounds(nd.col)
			p.SetBounds(nd.col, nd.lo, nd.hi)
			undo = append(undo, nd)
		}
		// Bound-based pruning.
		gapAbs := opts.Gap * math.Max(1, math.Abs(res.Obj+opts.ObjOffset))
		if nd.bound >= res.Obj-gapAbs {
			continue
		}
		res.Nodes++
		sol, err := p.Solve(opts.LP)
		if err != nil {
			return nil, err
		}
		res.LPIters += sol.Iters
		if sol.Status != lp.Optimal {
			continue // infeasible subtree (or numerically hopeless)
		}
		if sol.Obj >= res.Obj-gapAbs {
			continue
		}
		// Find the most fractional integer column, respecting branching
		// priorities (highest priority class first).
		branchCol, frac, branchPrio := -1, 0.0, math.MinInt
		for j := 0; j < n; j++ {
			if !integer[j] {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f <= 1e-6 {
				continue
			}
			pr := 0
			if opts.Priority != nil {
				pr = opts.Priority[j]
			}
			if pr > branchPrio || (pr == branchPrio && f > frac) {
				branchCol, frac, branchPrio = j, f, pr
			}
		}
		if branchCol >= 0 && opts.Heuristic != nil {
			if cand, ok := opts.Heuristic(sol.X); ok && Feasible(p, cand, 1e-6) {
				obj := 0.0
				for j := 0; j < n; j++ {
					obj += p.Obj(j) * cand[j]
				}
				if obj < res.Obj {
					res.Obj = obj
					res.X = append([]float64(nil), cand...)
				}
				// The LP bound may still be below the incumbent; keep
				// branching unless the gap is closed. The tolerance is
				// recomputed: the incumbent may just have gone finite.
				gapAbs = opts.Gap * math.Max(1, math.Abs(res.Obj+opts.ObjOffset))
				if sol.Obj >= res.Obj-gapAbs {
					continue
				}
			}
		}
		if branchCol < 0 {
			// Integral: new incumbent.
			res.Obj = sol.Obj
			res.X = append([]float64(nil), sol.X...)
			for j := range res.X {
				if integer[j] {
					res.X[j] = math.Round(res.X[j])
				}
			}
			continue
		}
		x := sol.X[branchCol]
		lo, hi := p.Bounds(branchCol)
		down := &node{col: branchCol, lo: lo, hi: math.Floor(x), bound: sol.Obj, depth: len(undo)}
		up := &node{col: branchCol, lo: math.Ceil(x), hi: hi, bound: sol.Obj, depth: len(undo)}
		// Explore the nearer side first (pushed last).
		if x-math.Floor(x) < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}
	if len(stack) == 0 {
		proven = true
	}
	restoreTo(0)
	res.Time = time.Since(start)
	if math.IsInf(res.Obj, 1) {
		if proven {
			res.Status = Infeasible
		} else {
			res.Status = status
		}
		return res, nil
	}
	if proven {
		res.Status = Optimal
	} else {
		res.Status = status
	}
	return res, nil
}

// roundFeasible rounds the integer components of x and checks the
// result against the rows; it returns the candidate when feasible.
func roundFeasible(p *lp.Problem, integer []bool, x []float64) ([]float64, float64, bool) {
	n := p.NumCols()
	cand := append([]float64(nil), x...)
	for j := 0; j < n; j++ {
		if integer[j] {
			cand[j] = math.Round(cand[j])
			lo, hi := p.Bounds(j)
			if cand[j] < lo || cand[j] > hi {
				return nil, 0, false
			}
		}
	}
	if !Feasible(p, cand, 1e-6) {
		return nil, 0, false
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Obj(j) * cand[j]
	}
	return cand, obj, true
}

// Feasible checks a point against all rows and bounds of p.
func Feasible(p *lp.Problem, x []float64, tol float64) bool {
	n := p.NumCols()
	act := make([]float64, p.NumRows())
	for j := 0; j < n; j++ {
		lo, hi := p.Bounds(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			return false
		}
		for _, nz := range p.Col(j) {
			act[nz.Row] += nz.Val * x[j]
		}
	}
	for r := 0; r < p.NumRows(); r++ {
		lo, hi := p.RowBounds(r)
		if act[r] < lo-tol || act[r] > hi+tol {
			return false
		}
	}
	return true
}

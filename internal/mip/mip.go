package mip

import (
	"context"
	"math"
	"runtime"
	"time"

	"repro/internal/fault"
	"repro/internal/lp"
	"repro/internal/obs"
)

// Search-effort counters and the open-pool high-water mark (DESIGN.md
// §8). Totals are flushed once per Solve; per-worker breakdowns live
// under mip/worker<N>/ (see search.go). recovered_panics counts worker
// panics caught and converted into node retries (DESIGN.md §10);
// heuristic_panics counts caller completion hooks that panicked and
// were treated as a miss.
var (
	cMIPSolves     = obs.NewCounter("mip/solves")
	cMIPNodes      = obs.NewCounter("mip/nodes")
	cMIPCutsRoot   = obs.NewCounter("mip/cuts_root")
	cMIPCutsTree   = obs.NewCounter("mip/cuts_tree")
	cMIPIncumb     = obs.NewCounter("mip/incumbents")
	cMIPHeurCalls  = obs.NewCounter("mip/heuristic_calls")
	cMIPRecovered  = obs.NewCounter("mip/recovered_panics")
	cMIPHeurPanics = obs.NewCounter("mip/heuristic_panics")
	gMIPPoolPeak   = obs.NewGauge("mip/pool_peak")
)

// Warm-start reuse counters (DESIGN.md §12): the compile cache's
// near-miss path hands a previous solve's incumbent, basis, and cut
// pool back in through Options.Seed/WarmBasis/SeedCuts; these record
// how often the material survived verification and was used.
var (
	cMIPSeedUsed    = obs.NewCounter("mip/seed_incumbents")
	cMIPSeedDrops   = obs.NewCounter("mip/seed_drops")
	cMIPSeedCuts    = obs.NewCounter("mip/seed_cuts")
	cMIPBoundProofs = obs.NewCounter("mip/bound_proofs")
)

// Fault-injection points (internal/fault): worker_panic panics inside
// a tree-search worker's dive, heuristic_err panics inside the
// protected heuristic call. Both exercise the recovery paths that
// production code must survive.
var (
	fpWorkerPanic = fault.NewPoint("mip/worker_panic")
	fpHeurErr     = fault.NewPoint("mip/heuristic_err")
)

// Options tunes the search. Out-of-range values (negative Workers or
// MaxNodes, non-positive Gap or Time) fall back to the defaults rather
// than producing undefined behavior.
type Options struct {
	Gap      float64       // relative optimality gap; default 1e-4 (0.01%)
	MaxNodes int           // node budget; default 200000
	Time     time.Duration // wall-clock budget; default 5 minutes
	LP       *lp.Options   // per-node LP options
	Workers  int           // parallel tree-search workers; default GOMAXPROCS

	// CutRounds controls the root-node cutting-plane loop: 0 runs the
	// automatic default (up to 30 rounds of lifted cover + clique
	// separation, stopping when the relaxation stops improving), a
	// negative value disables cutting planes entirely (reproducing the
	// plain warm-started branch and bound), and a positive value caps
	// the number of root rounds.
	CutRounds int

	// Presolve is interpreted by the modeling layer (model.Solve runs
	// its presolve pass before exporting the problem to this solver
	// unless Presolve is negative). mip.Solve itself ignores the field;
	// it lives here so one options value configures the whole stack.
	Presolve int

	// ObjOffset is a constant added to the objective for gap purposes
	// only: callers that moved fixed costs out of the LP pass it so the
	// relative gap is measured against the true total.
	ObjOffset float64

	// Priority orders branching: among fractional integer columns,
	// those with the highest priority value are branched first. Nil
	// means uniform.
	Priority []int

	// Heuristic, when set, is called at every node whose LP solution
	// still has fractional integer columns. It may return a feasible
	// completion of x (a full assignment); the solver verifies
	// feasibility and uses it as an incumbent. This hook lets domain
	// code finish symmetric subproblems (e.g. register colors)
	// combinatorially. Calls are serialized by the solver, so the hook
	// need not be goroutine-safe even with Workers > 1.
	Heuristic func(x []float64) ([]float64, bool)

	// Ctx, when set, cancels the solve: the root cut loop, the root
	// heuristics, and the tree search all poll it, and a cancelled
	// solve returns Status Cancelled together with the best incumbent
	// found so far (nil X when none exists). Nil means no cancellation
	// (context.Background()).
	Ctx context.Context

	// Seed, when non-nil, proposes a starting incumbent in the solved
	// problem's coordinates — the compile cache's near-miss path seeds
	// the search with the cached solution of a structurally identical
	// model. The solver verifies the point against bounds, integrality,
	// and every row before installing it; a seed that fails
	// verification is dropped (mip/seed_drops) rather than trusted, so
	// a stale or corrupt seed can cost time but never correctness.
	Seed []float64

	// WarmBasis, when non-nil, warm-starts the root relaxation from a
	// basis snapshot of a structurally identical problem (typically a
	// cached Result.RootBasis). A snapshot the LP layer cannot load
	// falls back to the crash basis; node re-solves are unaffected
	// (they warm-start from their parents as always).
	WarmBasis *lp.Basis

	// SeedCuts installs previously separated cutting planes into the
	// pool before the root cut loop. The caller asserts the rows are
	// valid for every integer point of THIS problem — the cache only
	// replays a pool across solves whose feasible regions hash
	// identically (model.Canon.Region), which is what makes the
	// assertion sound. A seeded pool whose LP turns inconsistent is
	// discarded wholesale rather than trusted. Ignored when cuts are
	// disabled (CutRounds < 0).
	SeedCuts []CutRow

	// LowerBound, when non-nil, is a caller-PROVEN global lower bound
	// on the optimal objective. The canonical source is the compile
	// cache: when a request only tightens bounds of a cached model and
	// keeps its objective, the cached optimum bounds the edited problem
	// from below (minimizing over a subset cannot do better). If an
	// incumbent meets the bound within Gap before the tree opens, the
	// solve finishes Optimal right there (mip/bound_proofs) — the
	// optimality proof transfers instead of being re-searched. A wrong
	// bound could only mislabel a solve as proven, never change the
	// incumbent, and the cache's subset check is what keeps it sound.
	LowerBound *float64

	// seedX/seedObj install a known-feasible starting incumbent before
	// the search (used by the local-branching sub-solves, which restrict
	// the neighborhood of a point they already hold).
	seedX   []float64
	seedObj float64
}

func (o *Options) fill() {
	if o.Gap <= 0 {
		o.Gap = 1e-4
	}
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.Time <= 0 {
		o.Time = 5 * time.Minute
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// Status of the MIP solve.
type Status int

// Statuses. Every halted status (NodeLimit, TimeLimit, Cancelled,
// Degraded) guarantees the best incumbent found is in Result.X when
// one exists; only its optimality proof is missing.
const (
	Optimal Status = iota // incumbent proven within gap
	Infeasible
	NodeLimit // best incumbent returned, gap not proven
	TimeLimit
	Cancelled // Options.Ctx cancelled; best incumbent returned
	// Degraded means the search drained but lost subtrees to
	// unrecoverable failures (a node LP with persistent numerical
	// trouble, or a node that panicked through all its retries), so
	// neither optimality nor infeasibility is proven.
	Degraded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	case TimeLimit:
		return "time-limit"
	case Cancelled:
		return "cancelled"
	case Degraded:
		return "degraded"
	}
	return "unknown"
}

// Result reports the solve outcome together with the statistics that
// Figure 7 of the paper tabulates (root relaxation time, total integer
// solve time).
type Result struct {
	Status   Status
	X        []float64
	Obj      float64
	RootObj  float64 // plain root relaxation objective (before cuts)
	RootTime time.Duration
	Time     time.Duration
	Nodes    int
	LPIters  int
	Workers  int // tree-search workers used

	// RootCutObj is the root bound after the cutting-plane loop; it
	// equals RootObj when cuts are disabled or none separated.
	RootCutObj float64
	// Cuts counts the cutting planes generated (root loop + tree).
	Cuts int

	// RootBasis is the basis of the plain root relaxation (before any
	// cuts), in the solved problem's coordinates — the snapshot a
	// compile cache hands back through Options.WarmBasis on a near
	// miss. Nil when the root did not finish Optimal, and cleared by
	// model.Solve when presolve changed coordinates.
	RootBasis *lp.Basis

	// PoolCuts is the final cut pool (root and tree cuts, after the
	// binding-cut trim), in the solved problem's coordinates, for
	// reuse through Options.SeedCuts. model.Solve remaps it back to
	// model coordinates when presolve ran.
	PoolCuts []CutRow
}

// CutRow is an exchangeable cutting plane Lo <= sum Vals·x[Cols] <= Hi.
// Cuts leave a solve through Result.PoolCuts and re-enter a later one
// through Options.SeedCuts; validity across solves is the caller's
// contract (see Options.SeedCuts).
type CutRow struct {
	Cols []int
	Vals []float64
	Lo   float64
	Hi   float64
}

// Solve minimizes p with the integrality constraint applied to the
// columns where integer[j] is true (pass nil for all-integer). The
// problem itself is never mutated: the root relaxation reads it and
// every worker searches on its own clone.
func Solve(p *lp.Problem, integer []bool, opts *Options) (*Result, error) {
	if opts == nil {
		opts = &Options{}
	}
	o := *opts
	o.fill()
	n := p.NumCols()
	if integer == nil {
		integer = make([]bool, n)
		for j := range integer {
			integer[j] = true
		}
	}
	start := time.Now()
	res := &Result{Obj: math.Inf(1), Workers: o.Workers}

	// Failure-policy plumbing (DESIGN.md §10): the wall-clock budget
	// becomes a hard deadline threaded into every LP solve (root, cut
	// loop, heuristics, and tree nodes all honor it), and the caller's
	// context is polled at node granularity by the tree search.
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	deadline := start.Add(o.Time)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	o.LP = withDeadline(o.LP, deadline)
	if ctx.Err() != nil {
		res.Status = Cancelled
		res.Time = time.Since(start)
		return res, nil
	}

	// Cache-provided warm-start material (DESIGN.md §12). The seed
	// incumbent is verified here — never trusted — so a stale cache
	// entry degrades to a cold search instead of a wrong answer.
	if o.Seed != nil {
		if x, obj, ok := checkSeed(p, integer, o.Seed); ok {
			o.seedX, o.seedObj = x, obj
			cMIPSeedUsed.Inc()
		} else {
			cMIPSeedDrops.Inc()
		}
		o.Seed = nil
	}

	// Root relaxation, warm-started from a cached basis when one was
	// handed in (the LP layer validates the snapshot and falls back to
	// the crash basis if it does not fit this problem).
	rootLP := o.LP
	if o.WarmBasis != nil {
		w := *o.LP
		w.WarmBasis = o.WarmBasis
		rootLP = &w
	}
	rootStart := time.Now()
	rootSp := obs.StartSpan("mip/root_lp")
	rootSol, err := p.Solve(rootLP)
	rootSp.End()
	res.RootTime = time.Since(rootStart)
	if err != nil {
		return nil, err
	}
	res.LPIters += rootSol.Iters
	switch rootSol.Status {
	case lp.Infeasible:
		res.Status = Infeasible
		res.Time = time.Since(start)
		return res, nil
	case lp.Unbounded:
		return nil, errUnbounded
	case lp.IterLimit:
		// The root LP ran out of budget. Salvage an incumbent from the
		// partial point when one exists instead of erroring out — the
		// contract is that budget-hit solves report a status, never an
		// error.
		return salvageRoot(p, integer, &o, rootSol, res, start)
	}
	res.RootObj = rootSol.Obj
	res.RootCutObj = rootSol.Obj
	res.RootBasis = rootSol.Basis

	// Root-node cutting-plane loop: separate lifted cover and clique
	// cuts against the fractional point, append them to a clone of the
	// problem, and re-solve warm-started from the previous basis until
	// the relaxation stops improving. The clone keeps the caller's
	// problem untouched; the pool carries the same cuts to the workers.
	work := p
	var sep *separator
	var cpool *cutPool
	cutBase := 0
	if o.CutRounds >= 0 {
		cutSp := obs.StartSpan("mip/cut_loop")
		sep = newSeparator(p, integer)
		cpool = newCutPool()
		rounds := o.CutRounds
		if rounds == 0 {
			rounds = 10
		}
		sol := rootSol
		// Replay a cached cut pool before separating anything new: the
		// caller asserted the rows are valid for this feasible region,
		// so the loop below starts from the tightened relaxation. A
		// seeded LP that does not re-solve cleanly discards the whole
		// pool — an Infeasible verdict here could only come from a bad
		// assertion, and it must never masquerade as a proof.
		if len(o.SeedCuts) > 0 {
			seeded := make([]cut, 0, len(o.SeedCuts))
			for _, sc := range o.SeedCuts {
				seeded = append(seeded, cut{
					cols: append([]int(nil), sc.Cols...),
					vals: append([]float64(nil), sc.Vals...),
					lo:   sc.Lo, hi: sc.Hi,
				})
			}
			if added := cpool.add(seeded); added > 0 {
				work = p.Clone()
				cpool.apply(work, 0)
				warm, werr := work.Solve(warmOpts(o.LP, sol.Basis))
				if werr == nil && warm.Status == lp.Optimal {
					res.LPIters += warm.Iters
					sol = warm
					cMIPSeedCuts.Add(int64(added))
				} else {
					cpool = newCutPool()
					work = p
				}
			}
		}
		stall := 0
		for round := 0; round < rounds; round++ {
			if time.Since(start) > o.Time || ctx.Err() != nil {
				break
			}
			cuts := sep.separate(sol.X, 48)
			if o.Heuristic == nil {
				// Tableau cuts only when no completion heuristic is
				// registered: a caller's heuristic rounds the node LP
				// vertex, and the dense GMI rows smear its fractionality
				// across columns the heuristic cannot read, degrading the
				// very incumbents that close heuristic-driven trees in tens
				// of nodes. The sparse combinatorial families above stay on
				// for everyone.
				cuts = append(cuts, gmiCuts(work, sol.Basis, integer, 16)...)
			}
			if len(cuts) == 0 {
				break
			}
			before := cpool.len()
			if cpool.add(cuts) == 0 {
				break
			}
			if work == p {
				work = p.Clone()
			}
			cpool.apply(work, before)
			warm, err := work.Solve(warmOpts(o.LP, sol.Basis))
			if err != nil {
				// A cut LP that fails (numerical trouble in the appended
				// rows) does not poison the solve: the pre-cut bound in
				// hand is still valid, and the appended rows stay — every
				// cut holds at every integer point, and the workers'
				// warm bases are row-prefix compatible.
				break
			}
			res.LPIters += warm.Iters
			if warm.Status == lp.Infeasible {
				// Every cut is valid for every integer point, so a cut
				// LP with no solution proves the MIP infeasible.
				res.Status = Infeasible
				res.Cuts = cpool.len()
				res.Time = time.Since(start)
				cutSp.End()
				return res, nil
			}
			if warm.Status != lp.Optimal {
				break // keep the bound already in hand
			}
			improved := warm.Obj - sol.Obj
			sol = warm
			if improved <= 1e-7*math.Max(1, math.Abs(sol.Obj)) {
				stall++
				if stall >= 8 {
					break
				}
			} else {
				stall = 0
			}
		}
		// Shed the cuts that ended up slack at the final root vertex
		// before the tree starts; the vertex stays optimal without them
		// and the workers' node LPs shrink accordingly. The trimmed LP
		// is re-solved cold (the incumbent basis indexes dropped rows).
		if tight := cpool.tight(sol.X, 1e-6); len(tight) < cpool.len() {
			tp := newCutPool()
			tp.add(tight)
			tw := p
			if tp.len() > 0 {
				tw = p.Clone()
				tp.apply(tw, 0)
			}
			if ts, err := tw.Solve(o.LP); err == nil && ts.Status == lp.Optimal {
				res.LPIters += ts.Iters
				cpool, work, sol = tp, tw, ts
			}
		}
		rootSol = sol
		res.RootCutObj = sol.Obj
		cutBase = cpool.len()
		cutSp.End()
	}

	e := newEngine(work, integer, &o, start)
	e.ctx = ctx
	e.sep = sep
	e.cuts = cpool
	e.cutBase = cutBase
	e.trueRows = p.NumRows()
	if sep != nil {
		// The implicit objective cut rides with the explicit families:
		// with cuts disabled the engine must replay the plain search.
		e.objStep = objGranularity(p, integer)
	}
	// Root primal heuristics. The basic rounding runs always (it is the
	// PR 1 behavior); the diving and local-branching stages ride with
	// the cut loop, because an early near-optimal incumbent prunes the
	// tree harder than any cut row. All candidates are verified against
	// the original rows — the incumbent need only satisfy true
	// constraints.
	heurSp := obs.StartSpan("mip/root_heuristics")
	bestObj := math.Inf(1)
	var bestX []float64
	if o.seedX != nil {
		bestX, bestObj = o.seedX, o.seedObj
		e.offerIncumbent(bestObj, append([]float64(nil), bestX...))
	}
	if x, obj, ok := roundFeasible(p, integer, rootSol.X); ok && obj < bestObj {
		bestX, bestObj = x, obj
	}
	if sep != nil && o.Heuristic == nil && ctx.Err() == nil && countBinaries(p, integer) <= maxHeurBinaries {
		// Callers with a domain completion heuristic already get
		// incumbents from structure; and on models with thousands of
		// binaries a fixed-radius Hamming ball is a vanishing fraction
		// of the cube while its sub-MIP LPs cost nearly as much as the
		// real node LPs — so the generic root heuristics stand down.
		if x, obj, iters, ok := rootDive(work, p, integer, rootSol, o.LP); ok {
			res.LPIters += iters
			if obj < bestObj {
				bestX, bestObj = x, obj
			}
		}
		// Local branching around the best point, recentering while it
		// keeps improving.
		for round := 0; round < 3 && bestX != nil; round++ {
			remain := o.Time - time.Since(start)
			if remain <= 0 || ctx.Err() != nil {
				break
			}
			x, obj, iters, ok := localBranch(ctx, p, integer, bestX, bestObj, o.LP, remain/8)
			res.LPIters += iters
			if !ok {
				break
			}
			bestX, bestObj = x, obj
		}
	}
	if bestX != nil {
		e.offerIncumbent(bestObj, bestX)
	}
	heurSp.End()
	// A caller-proven global lower bound can finish the proof before
	// the tree opens: when the best incumbent already meets it within
	// the optimality gap, there is nothing left to search. The cache's
	// near-miss path lands here whenever a region-tightening edit
	// leaves the cached optimum feasible.
	if o.LowerBound != nil {
		if inc := e.incObj(); !math.IsInf(inc, 1) && inc-*o.LowerBound <= e.gapAbs(inc) {
			e.mu.Lock()
			res.Obj, res.X = inc, e.incX
			e.mu.Unlock()
			res.Status = Optimal
			if cpool != nil {
				res.Cuts = cpool.len()
				res.PoolCuts = cpool.export()
			}
			res.Time = time.Since(start)
			cMIPSolves.Inc()
			cMIPBoundProofs.Inc()
			return res, nil
		}
	}
	searchSp := obs.StartSpan("mip/search")
	e.run(rootSol, res)
	searchSp.End()
	if cpool != nil {
		res.Cuts = cpool.len()
		res.PoolCuts = cpool.export()
	}
	res.Time = time.Since(start)
	cMIPSolves.Inc()
	cMIPNodes.Add(int64(res.Nodes))
	cMIPCutsRoot.Add(int64(cutBase))
	if cpool != nil {
		cMIPCutsTree.Add(int64(cpool.len() - cutBase))
	}
	return res, e.err
}

// maxHeurBinaries bounds the model size the generic root heuristics
// (rounding dive, local branching) are worth their LP cost on.
const maxHeurBinaries = 256

// countBinaries counts integer columns with 0/1 bounds.
func countBinaries(p *lp.Problem, integer []bool) int {
	n := 0
	for j, isInt := range integer {
		if !isInt {
			continue
		}
		if lo, hi := p.Bounds(j); lo == 0 && hi == 1 {
			n++
		}
	}
	return n
}

// withDeadline copies the caller's LP options with the solve's hard
// wall-clock deadline installed (keeping an earlier caller deadline if
// one is already set). Every LP the solve runs — root, cut loop,
// heuristic sub-solves, tree nodes — goes through the result, so no
// single LP can blow past the MIP budget.
func withDeadline(base *lp.Options, dl time.Time) *lp.Options {
	var o lp.Options
	if base != nil {
		o = *base
	}
	if o.Deadline.IsZero() || dl.Before(o.Deadline) {
		o.Deadline = dl
	}
	return &o
}

// salvageRoot turns a root LP that hit its iteration or wall-clock
// limit into a budget-style result instead of an error: when the
// phase-2 point is available it is rounded — and offered to the
// caller's completion heuristic — in search of an incumbent, and the
// best one found rides out under TimeLimit/NodeLimit. A phase-1 limit
// carries no point, so the result reports the halt with nil X and the
// caller's fallback path takes over.
func salvageRoot(p *lp.Problem, integer []bool, o *Options, rootSol *lp.Solution, res *Result, start time.Time) (*Result, error) {
	res.Status = NodeLimit
	if time.Since(start) > o.Time {
		res.Status = TimeLimit
	}
	if rootSol.X != nil {
		res.RootObj = rootSol.Obj
		res.RootCutObj = rootSol.Obj
		if x, obj, ok := roundFeasible(p, integer, rootSol.X); ok && obj < res.Obj {
			res.X, res.Obj = x, obj
		}
		if o.Heuristic != nil {
			if cand, ok := callHeuristic(o.Heuristic, rootSol.X); ok && Feasible(p, cand, 1e-6) {
				if obj := objOf(p, cand); obj < res.Obj {
					res.X, res.Obj = append([]float64(nil), cand...), obj
				}
			}
		}
	}
	res.Time = time.Since(start)
	cMIPSolves.Inc()
	return res, nil
}

// callHeuristic invokes a caller completion hook with panic
// protection: a hook that panics (or is forced to by the
// mip/heuristic_err fault point) is treated as a miss and tallied
// under mip/heuristic_panics instead of crashing the search.
func callHeuristic(h func(x []float64) ([]float64, bool), x []float64) (cand []float64, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			cMIPHeurPanics.Inc()
			cand, ok = nil, false
		}
	}()
	if fpHeurErr.Fire() {
		panic("fault: injected heuristic error")
	}
	return h(x)
}

// checkSeed verifies a caller-proposed incumbent: integral where
// required, inside bounds, and feasible for every row. It returns a
// defensive copy with the integer components snapped exactly onto the
// lattice, plus the objective value.
func checkSeed(p *lp.Problem, integer []bool, seed []float64) ([]float64, float64, bool) {
	if len(seed) != p.NumCols() {
		return nil, 0, false
	}
	x := append([]float64(nil), seed...)
	for j := range x {
		if !integer[j] {
			continue
		}
		r := math.Round(x[j])
		if math.Abs(x[j]-r) > 1e-6 {
			return nil, 0, false
		}
		x[j] = r
	}
	for j := range x {
		lo, hi := p.Bounds(j)
		if x[j] < lo-1e-9 || x[j] > hi+1e-9 {
			return nil, 0, false
		}
	}
	if !Feasible(p, x, 1e-6) {
		return nil, 0, false
	}
	return x, objOf(p, x), true
}

// objOf evaluates p's objective at x.
func objOf(p *lp.Problem, x []float64) float64 {
	obj := 0.0
	for j := range x {
		obj += p.Obj(j) * x[j]
	}
	return obj
}

// warmOpts copies the caller's LP options with a warm basis installed
// and — unless the caller pinned a method — the dual simplex selected:
// every warm re-solve in this package follows a bound change or an
// appended cut row, which leaves the incumbent basis dual feasible.
func warmOpts(base *lp.Options, b *lp.Basis) *lp.Options {
	var o lp.Options
	if base != nil {
		o = *base
	}
	o.WarmBasis = b
	if o.Method == lp.MethodAuto {
		o.Method = lp.MethodDual
	}
	return &o
}

// roundFeasible rounds the integer components of x and checks the
// result against the rows; it returns the candidate when feasible.
func roundFeasible(p *lp.Problem, integer []bool, x []float64) ([]float64, float64, bool) {
	n := p.NumCols()
	cand := append([]float64(nil), x...)
	for j := 0; j < n; j++ {
		if integer[j] {
			cand[j] = math.Round(cand[j])
			lo, hi := p.Bounds(j)
			if cand[j] < lo || cand[j] > hi {
				return nil, 0, false
			}
		}
	}
	if !Feasible(p, cand, 1e-6) {
		return nil, 0, false
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Obj(j) * cand[j]
	}
	return cand, obj, true
}

// Feasible checks a point against all rows and bounds of p.
func Feasible(p *lp.Problem, x []float64, tol float64) bool {
	return feasibleScratch(p, x, tol, nil)
}

// feasibleScratch is Feasible with a caller-owned row-activity scratch
// slice, so hot callers (the search workers) do not allocate per check.
func feasibleScratch(p *lp.Problem, x []float64, tol float64, act []float64) bool {
	return feasibleRows(p, x, tol, act, p.NumRows())
}

// feasibleRows is feasibleScratch restricted to the first rows
// constraint rows. Workers verify heuristic candidates this way,
// against the true model rows only: appended cut rows hold at every
// integer-feasible point by construction, and the 1e-7-scale slack a
// Gomory row can show at such a point must not veto an incumbent.
func feasibleRows(p *lp.Problem, x []float64, tol float64, act []float64, rows int) bool {
	n := p.NumCols()
	m := p.NumRows() // activity scratch spans every row; only rows are checked
	if cap(act) < m {
		act = make([]float64, m)
	} else {
		act = act[:m]
		for i := range act {
			act[i] = 0
		}
	}
	for j := 0; j < n; j++ {
		lo, hi := p.Bounds(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			return false
		}
		for _, nz := range p.Col(j) {
			act[nz.Row] += nz.Val * x[j]
		}
	}
	for r := 0; r < rows; r++ {
		lo, hi := p.RowBounds(r)
		if act[r] < lo-tol || act[r] > hi+tol {
			return false
		}
	}
	return true
}

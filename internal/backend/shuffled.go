package backend

import (
	"context"
	"math"
	"math/rand"
	"time"

	"repro/internal/mip"
	"repro/internal/model"
)

// Shuffled is the restarted randomized-priority branch and bound: it
// runs the exact solver in attempts whose branching priority order is
// re-randomized from a deterministic seed each restart, on a geometric
// budget schedule (the first attempt gets 1/2^(restarts-1) of the
// budget, each later one twice as much, the last whatever remains).
// The best verified incumbent carries across attempts as the next
// attempt's seed. An attempt that proves Optimal or Infeasible ends
// the solve with that proof, so Shuffled is itself an exact backend —
// its value inside a portfolio is diversification when the default
// priority order (or a caller-supplied one) has the tree stalling.
type Shuffled struct {
	canceller
	seed     int64
	restarts int
}

// NewShuffled returns a shuffled backend drawing priority orders from
// seed. Different seeds give independently diversified searches.
func NewShuffled(seed int64) *Shuffled { return &Shuffled{seed: seed, restarts: 4} }

// Name implements Backend.
func (b *Shuffled) Name() string { return "shuffled" }

// Caps implements Backend: shuffled runs the exact stack, so it
// consumes warm-start material and proof bounds; only the caller's
// branching priority is overridden.
func (b *Shuffled) Caps() Caps {
	return Caps{WarmStart: true, Cuts: true, Bounds: true, Exact: true}
}

// Solve implements Backend.
func (b *Shuffled) Solve(ctx context.Context, m *model.Model, opts *mip.Options) (*mip.Result, error) {
	cSolves.Inc()
	var base mip.Options
	if opts != nil {
		base = *opts
	}
	ctx, release := b.wrap(orBackground(ctx))
	defer release()
	base.Ctx = ctx

	budget := base.Time
	if budget <= 0 {
		budget = 5 * time.Minute
	}
	start := time.Now()
	n := m.LP().NumCols()

	var best *mip.Result
	bestObj := math.Inf(1)
	nodes, iters, cuts := 0, 0, 0
	for attempt := 0; attempt < b.restarts; attempt++ {
		remaining := budget - time.Since(start)
		if remaining <= 0 || ctx.Err() != nil {
			break
		}
		slice := remaining
		if attempt < b.restarts-1 {
			if s := budget / (1 << (b.restarts - 1 - attempt)); s < slice {
				slice = s
			}
		}
		o := base
		o.Time = slice
		o.Priority = shufflePriority(n, m.IntegerMask(), b.seed, attempt)
		if best != nil && best.X != nil {
			// Re-verified by the solver before installation.
			o.Seed = best.X
		}
		res, err := m.Solve(&o)
		if err != nil {
			if best != nil {
				break
			}
			return nil, err
		}
		nodes += res.Nodes
		iters += res.LPIters
		cuts += res.Cuts
		if res.Status == mip.Optimal || res.Status == mip.Infeasible {
			res.Nodes, res.LPIters, res.Cuts = nodes, iters, cuts
			res.Time = time.Since(start)
			return res, nil
		}
		if res.X != nil && res.Obj < bestObj {
			best, bestObj = res, res.Obj
		}
		cRestarts.Inc()
	}
	if best == nil {
		status := mip.TimeLimit
		if ctx.Err() != nil {
			status = mip.Cancelled
		}
		return &mip.Result{Status: status, Obj: math.Inf(1), Time: time.Since(start)}, nil
	}
	if ctx.Err() != nil {
		best.Status = mip.Cancelled
	}
	best.Nodes, best.LPIters, best.Cuts = nodes, iters, cuts
	best.Time = time.Since(start)
	return best, nil
}

// shufflePriority draws a fresh random branching priority for every
// integer column, deterministically from (seed, attempt).
func shufflePriority(n int, integer []bool, seed int64, attempt int) []int {
	rng := rand.New(rand.NewSource(seed*0x9e3779b9 + int64(attempt) + 1))
	pri := make([]int, n)
	for j := range pri {
		if j < len(integer) && integer[j] {
			pri[j] = rng.Intn(1 << 20)
		}
	}
	return pri
}

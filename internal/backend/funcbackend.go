package backend

import (
	"context"

	"repro/internal/mip"
	"repro/internal/model"
)

// SolveFunc is the function signature a Func backend wraps.
type SolveFunc func(ctx context.Context, m *model.Model, opts *mip.Options) (*mip.Result, error)

// Func adapts a plain function as a Backend. The allocator wraps its
// greedy fallback allocator this way (with empty Caps — it can warm-
// start from nothing and proves nothing), which is how the fallback
// joins a portfolio without this package importing internal/core.
type Func struct {
	canceller
	name string
	caps Caps
	fn   SolveFunc
}

// NewFunc wraps fn as a backend with the given name and capabilities.
func NewFunc(name string, caps Caps, fn SolveFunc) *Func {
	return &Func{name: name, caps: caps, fn: fn}
}

// Name implements Backend.
func (b *Func) Name() string { return b.name }

// Caps implements Backend.
func (b *Func) Caps() Caps { return b.caps }

// Solve implements Backend by calling the wrapped function.
func (b *Func) Solve(ctx context.Context, m *model.Model, opts *mip.Options) (*mip.Result, error) {
	cSolves.Inc()
	ctx, release := b.wrap(orBackground(ctx))
	defer release()
	return b.fn(ctx, m, opts)
}

package backend_test

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/mip"
	"repro/internal/model"
)

// knap builds the correlated multi-knapsack test instance as a Model.
func knap(n, m int, seed int64) *model.Model {
	p := mip.MultiKnapsack(n, m, seed)
	mask := make([]bool, p.NumCols())
	for i := range mask {
		mask[i] = true
	}
	return model.FromILP(p, mask)
}

func TestExactBackend(t *testing.T) {
	m := knap(12, 3, 1)
	be := backend.NewExact()
	res, err := be.Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal {
		t.Fatalf("status = %v, want Optimal", res.Status)
	}
	if err := m.CheckFeasible(res.X, 1e-6); err != nil {
		t.Fatalf("optimal point infeasible: %v", err)
	}
}

func TestShuffledMatchesExact(t *testing.T) {
	m := knap(12, 3, 1)
	exact, err := backend.NewExact().Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := backend.NewShuffled(7).Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Status != mip.Optimal {
		t.Fatalf("shuffled status = %v, want Optimal", sh.Status)
	}
	if math.Abs(sh.Obj-exact.Obj) > 1e-6 {
		t.Fatalf("shuffled obj %g != exact obj %g", sh.Obj, exact.Obj)
	}
	if err := m.CheckFeasible(sh.X, 1e-6); err != nil {
		t.Fatalf("shuffled point infeasible: %v", err)
	}
}

func TestPortfolioExactWins(t *testing.T) {
	m := knap(12, 3, 1)
	pf := backend.NewPortfolio(backend.NewExact(), backend.NewShuffled(0))
	res, err := pf.Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal {
		t.Fatalf("status = %v, want Optimal", res.Status)
	}
	if w := pf.Winner(); w != "exact" && w != "shuffled" {
		t.Fatalf("winner = %q, want an exact-capable member", w)
	}
	if err := m.CheckFeasible(res.X, 1e-6); err != nil {
		t.Fatalf("winning point infeasible: %v", err)
	}
}

// canned returns a Func backend that replies with a fixed result.
func canned(name string, caps backend.Caps, res *mip.Result, delay time.Duration) backend.Backend {
	return backend.NewFunc(name, caps,
		func(ctx context.Context, m *model.Model, o *mip.Options) (*mip.Result, error) {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return &mip.Result{Status: mip.Cancelled, Obj: math.Inf(1)}, nil
				}
			}
			r := *res
			return &r, nil
		})
}

// feasiblePoint solves the model once to obtain a genuinely feasible
// incumbent for the canned backends.
func feasiblePoint(t *testing.T, m *model.Model) ([]float64, float64) {
	t.Helper()
	res, err := backend.NewExact().Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil || res.Status != mip.Optimal {
		t.Fatalf("seed solve failed: %v %v", err, res)
	}
	return res.X, res.Obj
}

// TestPortfolioDropsLyingOptimal: a member without the Exact cap
// claims Optimal on an infeasible point; the claim must not win.
func TestPortfolioDropsLyingOptimal(t *testing.T) {
	m := knap(12, 3, 1)
	bad := make([]float64, m.LP().NumCols())
	for i := range bad {
		bad[i] = 1 // every item packed: violates the knapsack rows
	}
	liar := canned("liar", backend.Caps{}, &mip.Result{Status: mip.Optimal, X: bad, Obj: -1e9}, 0)
	pf := backend.NewPortfolio(liar, backend.NewExact())
	res, err := pf.Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Winner() != "exact" {
		t.Fatalf("winner = %q, want exact", pf.Winner())
	}
	if res.Status != mip.Optimal {
		t.Fatalf("status = %v, want Optimal from the exact member", res.Status)
	}
	if err := m.CheckFeasible(res.X, 1e-6); err != nil {
		t.Fatalf("winning point infeasible: %v", err)
	}
}

// TestPortfolioRefutesInfeasible: an exact-capable member claims
// Infeasible while another member holds a verified feasible point; the
// point wins with its honest (unproven) status.
func TestPortfolioRefutesInfeasible(t *testing.T) {
	m := knap(12, 3, 1)
	x, obj := feasiblePoint(t, m)
	bogus := canned("bogus", backend.Caps{Exact: true},
		&mip.Result{Status: mip.Infeasible, Obj: math.Inf(1)}, 0)
	feas := canned("feas", backend.Caps{},
		&mip.Result{Status: mip.NodeLimit, X: x, Obj: obj}, 0)
	pf := backend.NewPortfolio(bogus, feas)
	pf.Stagger = time.Millisecond
	res, err := pf.Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Winner() != "feas" {
		t.Fatalf("winner = %q, want feas", pf.Winner())
	}
	if res.Status != mip.NodeLimit {
		t.Fatalf("status = %v, want the incumbent's honest NodeLimit", res.Status)
	}
}

// TestPortfolioNeverUpgradesIncumbent: when no proof arrives the best
// incumbent wins but keeps its halting status.
func TestPortfolioBestIncumbentWins(t *testing.T) {
	m := knap(12, 3, 1)
	x, obj := feasiblePoint(t, m)
	zero := make([]float64, m.LP().NumCols()) // feasible: take nothing
	worse := canned("worse", backend.Caps{},
		&mip.Result{Status: mip.TimeLimit, X: zero, Obj: 0}, 0)
	better := canned("better", backend.Caps{},
		&mip.Result{Status: mip.NodeLimit, X: x, Obj: obj}, 0)
	pf := backend.NewPortfolio(worse, better)
	res, err := pf.Solve(context.Background(), m, &mip.Options{Time: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if pf.Winner() != "better" {
		t.Fatalf("winner = %q, want better (obj %g beats 0)", pf.Winner(), obj)
	}
	if res.Status == mip.Optimal {
		t.Fatal("portfolio upgraded an unproven incumbent to Optimal")
	}
	if math.Abs(m.Objective(res.X)-obj) > 1e-9 {
		t.Fatalf("returned point objective %g, want %g", m.Objective(res.X), obj)
	}
}

// TestPortfolioCancel: Cancel aborts an in-flight race.
func TestPortfolioCancel(t *testing.T) {
	m := knap(12, 3, 1)
	block := backend.NewFunc("block", backend.Caps{Exact: true},
		func(ctx context.Context, _ *model.Model, _ *mip.Options) (*mip.Result, error) {
			<-ctx.Done()
			return &mip.Result{Status: mip.Cancelled, Obj: math.Inf(1)}, nil
		})
	pf := backend.NewPortfolio(block)
	done := make(chan *mip.Result, 1)
	go func() {
		res, _ := pf.Solve(context.Background(), m, nil)
		done <- res
	}()
	time.Sleep(20 * time.Millisecond)
	pf.Cancel()
	select {
	case res := <-done:
		if res == nil || res.Status != mip.Cancelled {
			t.Fatalf("result = %+v, want Cancelled", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("portfolio Solve did not return after Cancel")
	}
}

// TestPortfolioStripsWarmStartForIncapableMembers: a member without
// the WarmStart/Cuts/Bounds caps must not see that material.
func TestPortfolioStripsWarmStart(t *testing.T) {
	m := knap(12, 3, 1)
	x, obj := feasiblePoint(t, m)
	var sawSeed, sawCuts, sawBound bool
	probe := backend.NewFunc("probe", backend.Caps{},
		func(ctx context.Context, _ *model.Model, o *mip.Options) (*mip.Result, error) {
			sawSeed = o.Seed != nil
			sawCuts = o.SeedCuts != nil
			sawBound = o.LowerBound != nil
			return &mip.Result{Status: mip.NodeLimit, X: x, Obj: obj}, nil
		})
	lb := -1e9
	opts := &mip.Options{
		Time:       time.Minute,
		Seed:       x,
		SeedCuts:   []mip.CutRow{{Cols: []int{0}, Vals: []float64{1}, Lo: 0, Hi: 1}},
		LowerBound: &lb,
	}
	pf := backend.NewPortfolio(probe)
	if _, err := pf.Solve(context.Background(), m, opts); err != nil {
		t.Fatal(err)
	}
	if sawSeed || sawCuts || sawBound {
		t.Fatalf("incapable member saw warm-start material: seed=%v cuts=%v bound=%v",
			sawSeed, sawCuts, sawBound)
	}
	if opts.Seed == nil || opts.SeedCuts == nil || opts.LowerBound == nil {
		t.Fatal("portfolio mutated the caller's options")
	}
}

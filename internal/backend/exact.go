package backend

import (
	"context"

	"repro/internal/mip"
	"repro/internal/model"
)

// Exact is the default backend: the full lp+mip stack behind
// model.Solve — presolve, root cutting planes, and the parallel
// warm-started branch and bound. It consumes every kind of cache-
// provided warm-start material and proves Optimal/Infeasible.
type Exact struct {
	canceller
}

// NewExact returns the default exact backend.
func NewExact() *Exact { return &Exact{} }

// Name implements Backend.
func (b *Exact) Name() string { return "exact" }

// Caps implements Backend: the exact stack supports everything.
func (b *Exact) Caps() Caps {
	return Caps{WarmStart: true, Cuts: true, Bounds: true, Exact: true}
}

// Solve implements Backend by running model.Solve with ctx threaded
// into the search (mip.Options.Ctx).
func (b *Exact) Solve(ctx context.Context, m *model.Model, opts *mip.Options) (*mip.Result, error) {
	cSolves.Inc()
	var o mip.Options
	if opts != nil {
		o = *opts
	}
	ctx, release := b.wrap(orBackground(ctx))
	defer release()
	o.Ctx = ctx
	return m.Solve(&o)
}

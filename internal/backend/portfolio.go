package backend

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/mip"
	"repro/internal/model"
	"repro/internal/obs"
)

// Portfolio-race counters (DESIGN.md §8/§14): races per Solve,
// cancelled for losers that were cancelled and drained, and
// refuted_infeasible for Infeasible proof claims dropped because
// another member held a verified feasible point (§10: a verified
// point refutes the claim — it must have been numerical).
var (
	cRaces     = obs.NewCounter("portfolio/races")
	cCancelled = obs.NewCounter("portfolio/cancelled")
	cRefuted   = obs.NewCounter("portfolio/refuted_infeasible")
)

// Portfolio races its member backends on one model under one context
// and returns the first answer that survives verification
// (DESIGN.md §14). The decision rules:
//
//   - A proof claim (Optimal) wins immediately once its point
//     re-passes model.CheckFeasible; the race is cancelled and every
//     loser is joined before Solve returns.
//   - An Infeasible claim is only accepted from an Exact member, and
//     only if no member produced a verified feasible point — a
//     verified point refutes the claim (portfolio/refuted_infeasible).
//   - Unproven incumbents (NodeLimit, TimeLimit, Degraded, Cancelled)
//     are held; the best verified one (by recomputed objective, ties
//     to the earlier member) wins only when no proof arrives, with
//     its halting status reported unchanged — a portfolio never
//     upgrades an incumbent to Optimal.
//
// Scheduling: the first Exact member is the primary and starts
// immediately with the caller's full worker budget. Further Exact
// members start after Stagger with Workers=1, so on the common fast
// path they never contend with the primary — the racing overhead is
// the cheap members' single pass plus goroutine bookkeeping. Cheap
// (non-Exact) members start immediately.
//
// A Portfolio is safe for concurrent Solve calls, but Winner reports
// only the most recent outcome — callers that need it (the allocator)
// build one Portfolio per solve.
type Portfolio struct {
	canceller

	// Stagger is the head start the primary exact member gets before
	// every other exact member launches; 0 means a quarter of the
	// solve budget (Options.Time, default 5 minutes).
	Stagger time.Duration

	members []Backend

	mu     sync.Mutex
	winner string
}

// NewPortfolio builds a portfolio over the given members. Order
// matters: the first Exact-capable member is the primary (full worker
// budget, no stagger), and earlier members win objective ties.
func NewPortfolio(members ...Backend) *Portfolio {
	return &Portfolio{members: members}
}

// Name implements Backend.
func (p *Portfolio) Name() string { return "portfolio" }

// Caps implements Backend: the union of the members' capabilities
// (material is forwarded only to members that can consume it).
func (p *Portfolio) Caps() Caps {
	var c Caps
	for _, b := range p.members {
		bc := b.Caps()
		c.WarmStart = c.WarmStart || bc.WarmStart
		c.Cuts = c.Cuts || bc.Cuts
		c.Bounds = c.Bounds || bc.Bounds
		c.Exact = c.Exact || bc.Exact
	}
	return c
}

// Winner returns the name of the member whose answer the most recent
// Solve returned ("" before the first Solve or when no member
// produced a usable result).
func (p *Portfolio) Winner() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.winner
}

func (p *Portfolio) setWinner(name string) {
	p.mu.Lock()
	p.winner = name
	p.mu.Unlock()
}

// memberOpts copies the caller's options for one member, stripping
// warm-start material the member's caps cannot consume and reducing
// non-primary exact members to one tree-search worker.
func memberOpts(base *mip.Options, caps Caps, primary bool) *mip.Options {
	var o mip.Options
	if base != nil {
		o = *base
	}
	if !caps.WarmStart {
		o.Seed = nil
		o.WarmBasis = nil
	}
	if !caps.Cuts {
		o.SeedCuts = nil
	}
	if !caps.Bounds {
		o.LowerBound = nil
	}
	if caps.Exact && !primary {
		o.Workers = 1
	}
	return &o
}

// Solve implements Backend by racing the members. All member
// goroutines are joined before Solve returns, win or lose.
func (p *Portfolio) Solve(ctx context.Context, m *model.Model, opts *mip.Options) (*mip.Result, error) {
	if len(p.members) == 0 {
		return nil, errors.New("backend: portfolio has no members")
	}
	cRaces.Inc()
	p.setWinner("")
	start := time.Now()
	ctx, release := p.wrap(orBackground(ctx))
	defer release()
	raceCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	budget := 5 * time.Minute
	if opts != nil && opts.Time > 0 {
		budget = opts.Time
	}
	stagger := p.Stagger
	if stagger <= 0 {
		stagger = budget / 4
	}
	primary := -1
	for i, b := range p.members {
		if b.Caps().Exact {
			primary = i
			break
		}
	}

	type outcome struct {
		idx int
		res *mip.Result
		err error
	}
	ch := make(chan outcome, len(p.members))
	var wg sync.WaitGroup
	for i, b := range p.members {
		delay := time.Duration(0)
		if b.Caps().Exact && i != primary {
			delay = stagger
		}
		wg.Add(1)
		go func(i int, b Backend, delay time.Duration) {
			defer wg.Done()
			if delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-raceCtx.Done():
					t.Stop()
					ch <- outcome{i, &mip.Result{Status: mip.Cancelled, Obj: math.Inf(1)}, nil}
					return
				case <-t.C:
				}
			}
			res, err := b.Solve(raceCtx, m, memberOpts(opts, b.Caps(), i == primary))
			ch <- outcome{i, res, err}
		}(i, b, delay)
	}

	var winner, best, infeas *mip.Result
	winIdx, bestIdx, infeasIdx := -1, -1, -1
	bestObj := math.Inf(1)
	var firstErr error
	nodes, iters, cuts := 0, 0, 0
	tally := func(res *mip.Result) {
		nodes += res.Nodes
		iters += res.LPIters
		cuts += res.Cuts
	}
	pending := len(p.members)
	for pending > 0 && winner == nil {
		o := <-ch
		pending--
		if o.err != nil || o.res == nil {
			cErrors.Inc()
			if firstErr == nil {
				firstErr = o.err
				if firstErr == nil {
					firstErr = fmt.Errorf("backend %s returned no result", p.members[o.idx].Name())
				}
			}
			continue
		}
		res := o.res
		tally(res)
		exact := p.members[o.idx].Caps().Exact
		switch {
		case res.Status == mip.Optimal && exact:
			if res.X == nil || m.CheckFeasible(res.X, verifyTol) != nil {
				cVerifyDrops.Inc()
				continue
			}
			winner, winIdx = res, o.idx
		case res.Status == mip.Infeasible:
			if exact && infeas == nil {
				infeas, infeasIdx = res, o.idx
			}
		default:
			// Unproven incumbents — including an "Optimal" claim from a
			// member whose caps cannot back it with a proof, which is
			// downgraded so it can never surface as proven.
			if res.Status == mip.Optimal {
				res.Status = mip.NodeLimit
			}
			if res.X == nil {
				continue
			}
			if m.CheckFeasible(res.X, verifyTol) != nil {
				cVerifyDrops.Inc()
				continue
			}
			obj := m.Objective(res.X)
			if obj < bestObj-1e-12 || (math.Abs(obj-bestObj) <= 1e-12 && (bestIdx < 0 || o.idx < bestIdx)) {
				best, bestObj, bestIdx = res, obj, o.idx
			}
		}
	}

	// Decision made (or every member reported): cancel the losers and
	// drain them — no member goroutine outlives the race.
	cancelAll()
	for pending > 0 {
		o := <-ch
		pending--
		if o.res != nil {
			tally(o.res)
			if o.res.Status == mip.Cancelled {
				cCancelled.Inc()
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	finish := func(res *mip.Result, idx int) (*mip.Result, error) {
		name := p.members[idx].Name()
		p.setWinner(name)
		obs.NewCounter("portfolio/winner/" + name).Inc()
		res.Nodes, res.LPIters, res.Cuts = nodes, iters, cuts
		res.Time = elapsed
		return res, nil
	}
	switch {
	case winner != nil:
		if infeas != nil {
			cRefuted.Inc()
		}
		return finish(winner, winIdx)
	case best != nil:
		if infeas != nil {
			cRefuted.Inc()
		}
		return finish(best, bestIdx)
	case infeas != nil:
		return finish(infeas, infeasIdx)
	case ctx.Err() != nil:
		return &mip.Result{Status: mip.Cancelled, Obj: math.Inf(1), Time: elapsed}, nil
	case firstErr != nil:
		return nil, fmt.Errorf("backend: every portfolio member failed: %w", firstErr)
	default:
		return nil, errors.New("backend: no portfolio member produced a usable result")
	}
}

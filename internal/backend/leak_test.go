package backend_test

import (
	"context"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/mip"
	"repro/internal/model"
)

// TestPortfolioDoesNotLeakGoroutines runs repeated races in which the
// fast member wins while a slow member is still searching, and checks
// that every cancelled loser is joined before Solve returns: the
// goroutine count after the races settles back to the baseline. This
// is the losers-must-not-leak guarantee of the Backend contract.
func TestPortfolioDoesNotLeakGoroutines(t *testing.T) {
	m := knap(10, 3, 2)
	x, obj := feasiblePoint(t, m)

	slow := backend.NewFunc("slow", backend.Caps{Exact: true},
		func(ctx context.Context, _ *model.Model, _ *mip.Options) (*mip.Result, error) {
			select {
			case <-ctx.Done():
				return &mip.Result{Status: mip.Cancelled, Obj: math.Inf(1)}, nil
			case <-time.After(30 * time.Second):
				return &mip.Result{Status: mip.TimeLimit, Obj: math.Inf(1)}, nil
			}
		})
	fast := backend.NewFunc("fast", backend.Caps{Exact: true},
		func(ctx context.Context, mm *model.Model, _ *mip.Options) (*mip.Result, error) {
			return &mip.Result{Status: mip.Optimal, X: x, Obj: obj}, nil
		})

	runtime.GC()
	base := runtime.NumGoroutine()
	for i := 0; i < 25; i++ {
		// fast is the primary (first Exact member); slow would start
		// after the stagger, so force it into the race immediately.
		pf := backend.NewPortfolio(fast, slow)
		pf.Stagger = time.Nanosecond
		res, err := pf.Solve(context.Background(), m, &mip.Options{Time: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != mip.Optimal {
			t.Fatalf("race %d: status = %v, want Optimal", i, res.Status)
		}
	}
	// Allow runtime-internal goroutines (timers etc.) to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked across portfolio races: baseline %d, now %d", base, now)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

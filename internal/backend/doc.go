// Package backend carves the model → solver handoff behind a
// pluggable Backend interface (DESIGN.md §14): the allocator
// (internal/core) and the daemon (internal/server) dispatch every ILP
// through a Backend instead of calling the lp+mip stack directly.
//
// Three implementations ship with the repository:
//
//   - Exact — the default: model.Solve's presolve + root cuts +
//     parallel warm-started branch and bound. Proves Optimal and
//     Infeasible, consumes every kind of warm-start material.
//   - Shuffled — a restarted branch and bound that re-randomizes the
//     branching priority order on a geometric restart schedule. Also
//     exact; its value is diversification when the default priority
//     order stalls.
//   - Func — an adapter wrapping a plain function, used by the
//     allocator to expose its greedy fallback allocator as a backend
//     without this package importing internal/core.
//
// Portfolio races any set of backends under one context: the first
// member whose answer survives verification wins, the losers are
// cancelled and joined before Solve returns (no goroutine outlives
// the race). Verification-before-winning is the contract that keeps
// racing honest — a proof claim (Optimal/Infeasible) is only accepted
// after the point re-passes model.CheckFeasible (or, for Infeasible,
// only while no member holds a verified feasible point), and a result
// that arrives without a proof can win only when no proof arrives at
// all, with its halting status reported unchanged. A portfolio
// therefore never upgrades an unproven incumbent to Optimal.
//
// Counters (DESIGN.md §8 naming scheme): backend/solves,
// backend/errors, backend/verify_drops, backend/cancels,
// backend/restarts, portfolio/races, portfolio/cancelled,
// portfolio/refuted_infeasible, and portfolio/winner/<name>.
package backend

package backend

import (
	"context"
	"sync"

	"repro/internal/mip"
	"repro/internal/model"
	"repro/internal/obs"
)

// Solve-path counters (DESIGN.md §8): one solves tick per member
// Solve call, errors for member failures, verify_drops for answers
// that failed re-verification against the model, cancels for Cancel
// invocations, restarts for Shuffled's re-randomized attempts.
var (
	cSolves      = obs.NewCounter("backend/solves")
	cErrors      = obs.NewCounter("backend/errors")
	cVerifyDrops = obs.NewCounter("backend/verify_drops")
	cCancels     = obs.NewCounter("backend/cancels")
	cRestarts    = obs.NewCounter("backend/restarts")
)

// verifyTol is the feasibility tolerance a candidate answer must pass
// (model.CheckFeasible) before a portfolio lets it win. It matches the
// solver's own integrality tolerance and the compile cache's feasTol.
const verifyTol = 1e-6

// Caps declares which solve capabilities a Backend has, so a caller
// (chiefly Portfolio) knows what warm-start material it may forward
// and what conclusions it may trust.
type Caps struct {
	// WarmStart: the backend consumes Options.Seed and
	// Options.WarmBasis instead of silently ignoring them.
	WarmStart bool
	// Cuts: the backend consumes Options.SeedCuts.
	Cuts bool
	// Bounds: the backend consumes Options.LowerBound and may conclude
	// Optimal from a transferred proof.
	Bounds bool
	// Exact: the backend can prove Optimal and Infeasible on its own.
	// Backends without this flag only ever produce unproven incumbents
	// (or errors), and a portfolio never accepts a proof claim from
	// them.
	Exact bool
}

// Backend is a pluggable ILP solver: the allocator and the daemon
// dispatch every model solve through this interface (DESIGN.md §14).
//
// Solve minimizes m under ctx and returns a mip.Result whose Status
// is honest in the §10 sense: Optimal and Infeasible are proof
// claims, every other status carries the best incumbent found (nil X
// when none). Implementations must be safe for concurrent Solve calls
// and must honor both ctx and Options.Time.
type Backend interface {
	// Name identifies the backend in counters and reports.
	Name() string
	// Caps reports the backend's capability flags.
	Caps() Caps
	// Solve minimizes the model's ILP. opts may be nil; callers retain
	// ownership of opts and implementations must not mutate it.
	Solve(ctx context.Context, m *model.Model, opts *mip.Options) (*mip.Result, error)
	// Cancel aborts every in-flight Solve on this backend (each then
	// returns with Status Cancelled and its best incumbent, exactly as
	// if its context had been cancelled). Safe to call concurrently
	// with Solve and when nothing is in flight.
	Cancel()
}

// canceller implements the Cancel side of the Backend contract: each
// Solve registers a derived context, and Cancel fires every live one.
type canceller struct {
	mu   sync.Mutex
	live map[uint64]context.CancelFunc
	next uint64
}

// wrap derives a cancellable context registered with the canceller;
// the returned release must be deferred by the Solve that called it.
func (c *canceller) wrap(ctx context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(ctx)
	c.mu.Lock()
	if c.live == nil {
		c.live = map[uint64]context.CancelFunc{}
	}
	id := c.next
	c.next++
	c.live[id] = cancel
	c.mu.Unlock()
	return ctx, func() {
		c.mu.Lock()
		delete(c.live, id)
		c.mu.Unlock()
		cancel()
	}
}

// Cancel aborts every in-flight Solve registered with this canceller.
func (c *canceller) Cancel() {
	c.mu.Lock()
	for _, cancel := range c.live {
		cancel()
	}
	c.mu.Unlock()
	cCancels.Inc()
}

// orBackground normalizes a nil context.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

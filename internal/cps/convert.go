package cps

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/layout"
	"repro/internal/source"
	"repro/internal/types"
)

// Convert translates a type-checked Nova program into first-order CPS,
// starting from the entry function. Following §4.3 of the paper, all
// calls in non-tail position are fully inlined; tail calls to functions
// that are (mutually) recursive become jumps to memoized per-
// instantiation specializations. Records and tuples are flattened into
// their word-sized leaves; booleans become control flow.
//
// The entry function's word-leaf parameters become the program's input
// variables, and its result feeds Halt.
func Convert(info *types.Info, entry string, errs *source.ErrorList) *Program {
	c := &converter{
		prog: NewProgram(),
		info: info,
		errs: errs,
		memo: map[string]Label{},
	}
	var entryDecl *ast.FunDecl
	globals := &scope{}
	for name, v := range info.Consts {
		globals = globals.bind(name, &valEnt{leaves: []Value{Const(v)}, t: types.Word{}})
	}
	for _, d := range info.Program.Decls {
		if fd, ok := d.(*ast.FunDecl); ok {
			fe := &funEnt{decl: fd, obj: info.Funs[fd]}
			globals = globals.bind(fd.Name, fe)
			if fd.Name == entry {
				entryDecl = fd
			}
		}
	}
	// Tie the knot: top-level functions see each other.
	for s := globals; s != nil; s = s.parent {
		if fe, ok := s.ent.(*funEnt); ok {
			fe.env = globals
		}
	}
	if entryDecl == nil {
		errs.Errorf(source.Span{}, "entry function %q not found", entry)
		return c.prog
	}
	obj := info.Funs[entryDecl]
	env := globals
	var params []Var
	for _, p := range obj.Type.Params {
		leaves := c.freshLeaves(p.Name, p.Type)
		params = append(params, varsOf(leaves)...)
		env = env.bind(p.Name, &valEnt{leaves: leaves, t: p.Type})
	}
	ctx := &convCtx{ret: kont{f: func(leaves []Value) Term { return &Halt{Results: leaves} }}}
	body := c.convBlock(env, ctx, entryDecl.Body, func(env2 *scope, leaves []Value) Term {
		return ctx.ret.invoke(leaves)
	})
	l := c.prog.NewLabel()
	c.prog.AddFun(&Fun{Label: l, Name: entry, Kind: KindFun, Params: params, Body: body})
	c.prog.Entry = l
	return c.prog
}

// ---------------------------------------------------------------------------
// Environments and entities

// scope is an immutable environment: binding creates a new node, so
// function entities capture exactly the environment at their
// definition point (compile-time closures; no runtime allocation).
type scope struct {
	name   string
	ent    entity
	parent *scope
}

func (s *scope) bind(name string, e entity) *scope {
	return &scope{name: name, ent: e, parent: s}
}

func (s *scope) lookup(name string) (entity, bool) {
	for n := s; n != nil; n = n.parent {
		if n.name == name {
			return n.ent, true
		}
	}
	return nil, false
}

// entity is the compile-time denotation of a source name.
type entity interface{ entity() }

// valEnt is a first-class value: its flattened word leaves.
type valEnt struct {
	leaves []Value
	t      types.Type
}

// funEnt is a function: its declaration plus definition environment.
type funEnt struct {
	decl *ast.FunDecl
	obj  *types.FunObj
	env  *scope
}

// exnEnt is an exception: the label of its handler continuation.
type exnEnt struct {
	label Label
	t     types.Exn
}

func (*valEnt) entity() {}
func (*funEnt) entity() {}
func (*exnEnt) entity() {}

// kont is a continuation: either a known label (invocation is a jump)
// or a meta-continuation spliced inline.
type kont struct {
	label   Label
	isLabel bool
	f       func([]Value) Term
}

func (k kont) invoke(leaves []Value) Term {
	if k.isLabel {
		return &App{F: k.label, Args: leaves}
	}
	return k.f(leaves)
}

// convCtx carries the per-instantiation return continuation.
type convCtx struct {
	ret kont
}

type converter struct {
	prog *Program
	info *types.Info
	errs *source.ErrorList
	memo map[string]Label // tail-call specializations
	// converting tracks function declarations whose bodies are on the
	// conversion stack; calls to them are specialized, not inlined.
	converting []*ast.FunDecl
}

func (c *converter) isConverting(fd *ast.FunDecl) bool {
	for _, d := range c.converting {
		if d == fd {
			return true
		}
	}
	return false
}

func (c *converter) freshLeaves(name string, t types.Type) []Value {
	flat := types.Flatten(t)
	leaves := make([]Value, len(flat))
	for i, lf := range flat {
		n := name
		if lf.Path != "" {
			n = name + "." + lf.Path
		}
		leaves[i] = c.prog.NewVar(n)
	}
	return leaves
}

func varsOf(leaves []Value) []Var {
	out := make([]Var, len(leaves))
	for i, l := range leaves {
		out[i] = l.(Var)
	}
	return out
}

// reify turns a meta-continuation into a label so it can be shared by
// several predecessors without duplicating its body. Already-labeled
// continuations are returned unchanged.
func (c *converter) reify(k kont, resultT types.Type, name string) kont {
	if k.isLabel {
		return k
	}
	leaves := c.freshLeaves(name, resultT)
	body := k.f(leaves)
	// Eta reduction: a continuation that merely forwards its parameters
	// to an existing label IS that label. Without this, every tail call
	// would reify a fresh wrapper and the specialization memo would
	// never hit, unrolling loops forever.
	if app, ok := body.(*App); ok && len(app.Args) == len(leaves) {
		eta := true
		for i, a := range app.Args {
			if a != leaves[i] {
				eta = false
				break
			}
		}
		if eta {
			return kont{label: app.F, isLabel: true}
		}
	}
	l := c.prog.NewLabel()
	c.prog.AddFun(&Fun{Label: l, Name: name, Kind: KindCont,
		Params: varsOf(leaves), Body: body})
	return kont{label: l, isLabel: true}
}

// ---------------------------------------------------------------------------
// Blocks and statements

// blockK receives the block's result leaves together with the
// environment in effect at the end of the block.
type blockK func(env *scope, leaves []Value) Term

func (c *converter) convBlock(env *scope, ctx *convCtx, b *ast.Block, k blockK) Term {
	return c.convStmts(env, ctx, b, 0, k)
}

func (c *converter) convStmts(env *scope, ctx *convCtx, b *ast.Block, i int, k blockK) Term {
	if i >= len(b.Stmts) {
		if b.Result == nil {
			return k(env, nil)
		}
		return c.convExpr(env, ctx, b.Result, func(leaves []Value) Term {
			return k(env, leaves)
		})
	}
	switch s := b.Stmts[i].(type) {
	case *ast.LetStmt:
		return c.convExpr(env, ctx, s.X, func(leaves []Value) Term {
			env2 := c.bindLet(env, s, leaves)
			return c.convStmts(env2, ctx, b, i+1, k)
		})
	case *ast.ExprStmt:
		return c.convExpr(env, ctx, s.X, func([]Value) Term {
			return c.convStmts(env, ctx, b, i+1, k)
		})
	case *ast.StoreStmt:
		return c.convStore(env, ctx, s, func() Term {
			return c.convStmts(env, ctx, b, i+1, k)
		})
	case *ast.FunStmt:
		// Bind the whole run of consecutive fun declarations mutually.
		j := i
		var ents []*funEnt
		env2 := env
		for j < len(b.Stmts) {
			fs, ok := b.Stmts[j].(*ast.FunStmt)
			if !ok {
				break
			}
			fe := &funEnt{decl: fs.Fun, obj: c.info.Funs[fs.Fun]}
			env2 = env2.bind(fs.Fun.Name, fe)
			ents = append(ents, fe)
			j++
		}
		for _, fe := range ents {
			fe.env = env2
		}
		return c.convStmts(env2, ctx, b, j, k)
	case *ast.WhileStmt:
		return c.convWhile(env, ctx, s, func(env2 *scope) Term {
			return c.convStmts(env2, ctx, b, i+1, k)
		})
	case *ast.ReturnStmt:
		if s.X == nil {
			return ctx.ret.invoke(nil)
		}
		return c.convExpr(env, ctx, s.X, func(leaves []Value) Term {
			return ctx.ret.invoke(leaves)
		})
	default:
		c.errs.Errorf(s.Span(), "cps: unsupported statement %T", s)
		return c.convStmts(env, ctx, b, i+1, k)
	}
}

func (c *converter) bindLet(env *scope, s *ast.LetStmt, leaves []Value) *scope {
	t := c.info.TypeOf(s.X)
	if len(s.Names) == 1 {
		if s.Names[0] == "_" {
			return env
		}
		return env.bind(s.Names[0], &valEnt{leaves: leaves, t: t})
	}
	tup := types.Expand(t).(types.Tuple)
	off := 0
	for i, n := range s.Names {
		cnt := types.WordCount(tup.Elems[i])
		if n != "_" {
			env = env.bind(n, &valEnt{leaves: leaves[off : off+cnt], t: tup.Elems[i]})
		}
		off += cnt
	}
	return env
}

func (c *converter) convStore(env *scope, ctx *convCtx, s *ast.StoreStmt, k func() Term) Term {
	return c.convExpr(env, ctx, s.Addr, func(addr []Value) Term {
		return c.convExprList(env, ctx, s.Values, func(leaves []Value) Term {
			switch s.Op {
			case ast.OpCSR:
				return &Special{Kind: SpecCSRWrite, Args: append(addr, leaves...), K: k()}
			default:
				return &MemWrite{Space: storeSpace(s.Op), Addr: addr[0], Srcs: leaves, K: k()}
			}
		})
	})
}

func storeSpace(op ast.IntrinsicOp) Space {
	switch op {
	case ast.OpSRAM:
		return SpaceSRAM
	case ast.OpSDRAM:
		return SpaceSDRAM
	case ast.OpScratch:
		return SpaceScratch
	case ast.OpTFIFO:
		return SpaceTFIFO
	}
	panic("cps: not a writable space")
}

// convWhile compiles a loop into a header continuation. Bindings made
// at the body's top level that shadow loop-external variables are
// loop-carried: their end-of-body values feed the next iteration.
func (c *converter) convWhile(env *scope, ctx *convCtx, s *ast.WhileStmt, k func(*scope) Term) Term {
	carried := carriedNames(env, s.Body)
	// Current leaves of the carried variables form the initial loop args.
	var initArgs []Value
	var carriedTypes []types.Type
	for _, name := range carried {
		ent, _ := env.lookup(name)
		ve := ent.(*valEnt)
		initArgs = append(initArgs, ve.leaves...)
		carriedTypes = append(carriedTypes, ve.t)
	}
	header := c.prog.NewLabel()
	// Header params: fresh leaves for every carried variable.
	var params []Var
	henv := env
	for i, name := range carried {
		leaves := c.freshLeaves(name, carriedTypes[i])
		params = append(params, varsOf(leaves)...)
		henv = henv.bind(name, &valEnt{leaves: leaves, t: carriedTypes[i]})
	}
	// Exit continuation: proceed with the header's view of the carried
	// variables (their values when the condition turned false).
	exit := c.reify(kont{f: func([]Value) Term { return k(henv) }}, types.Unit, "while_exit")
	body := c.convBool(henv, ctx, s.Cond,
		func() Term {
			return c.convBlock(henv, ctx, s.Body, func(benv *scope, _ []Value) Term {
				var next []Value
				for _, name := range carried {
					ent, _ := benv.lookup(name)
					next = append(next, ent.(*valEnt).leaves...)
				}
				return &App{F: header, Args: next}
			})
		},
		func() Term { return exit.invoke(nil) })
	c.prog.AddFun(&Fun{Label: header, Name: "while", Kind: KindLoop, Params: params, Body: body})
	return &App{F: header, Args: initArgs}
}

// carriedNames returns, in a deterministic order, the names rebound at
// the top level of the loop body that shadow word-leaf bindings
// visible outside the loop.
func carriedNames(env *scope, b *ast.Block) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range b.Stmts {
		ls, ok := s.(*ast.LetStmt)
		if !ok {
			continue
		}
		for _, n := range ls.Names {
			if n == "_" || seen[n] {
				continue
			}
			if ent, ok := env.lookup(n); ok {
				if _, isVal := ent.(*valEnt); isVal {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Expressions

func (c *converter) convExprList(env *scope, ctx *convCtx, es []ast.Expr, k func([]Value) Term) Term {
	var all []Value
	var rec func(i int) Term
	rec = func(i int) Term {
		if i >= len(es) {
			return k(all)
		}
		return c.convExpr(env, ctx, es[i], func(leaves []Value) Term {
			all = append(all, leaves...)
			return rec(i + 1)
		})
	}
	return rec(0)
}

func (c *converter) convExpr(env *scope, ctx *convCtx, e ast.Expr, k func([]Value) Term) Term {
	switch e := e.(type) {
	case *ast.IntLit:
		return k([]Value{Const(e.Value)})
	case *ast.BoolLit:
		if e.Value {
			return k([]Value{Const(1)})
		}
		return k([]Value{Const(0)})
	case *ast.VarRef:
		ent, ok := env.lookup(e.Name)
		if !ok {
			c.errs.Errorf(e.Sp, "cps: unbound %q", e.Name)
			return k([]Value{Const(0)})
		}
		if ve, ok := ent.(*valEnt); ok {
			return k(ve.leaves)
		}
		c.errs.Errorf(e.Sp, "cps: %q is not first-class here", e.Name)
		return k(nil)
	case *ast.UnaryExpr:
		switch e.Op {
		case ast.OpNot:
			return c.boolValue(env, ctx, e, k)
		case ast.OpNeg:
			return c.convExpr(env, ctx, e.X, func(x []Value) Term {
				return c.arith(ast.OpSub, Const(0), x[0], "neg", k)
			})
		default: // OpInv
			return c.convExpr(env, ctx, e.X, func(x []Value) Term {
				return c.arith(ast.OpXor, x[0], Const(0xffffffff), "inv", k)
			})
		}
	case *ast.BinaryExpr:
		if e.Op.IsComparison() || e.Op.IsLogical() {
			return c.boolValue(env, ctx, e, k)
		}
		return c.convExpr(env, ctx, e.L, func(l []Value) Term {
			return c.convExpr(env, ctx, e.R, func(r []Value) Term {
				return c.arith(e.Op, l[0], r[0], "t", k)
			})
		})
	case *ast.TupleExpr:
		return c.convExprList(env, ctx, e.Elems, k)
	case *ast.RecordExpr:
		var exprs []ast.Expr
		for _, f := range e.Fields {
			exprs = append(exprs, f.X)
		}
		return c.convExprList(env, ctx, exprs, k)
	case *ast.SelectExpr:
		xt := c.info.TypeOf(e.X)
		start, count := leafRangeField(xt, e.Name)
		return c.convExpr(env, ctx, e.X, func(x []Value) Term {
			return k(x[start : start+count])
		})
	case *ast.ProjExpr:
		xt := c.info.TypeOf(e.X)
		start, count := leafRangeIndex(xt, e.Index)
		return c.convExpr(env, ctx, e.X, func(x []Value) Term {
			return k(x[start : start+count])
		})
	case *ast.IfExpr:
		resultT := c.info.TypeOf(e)
		join := c.reify(kont{f: k}, resultT, "join")
		thenK := func() Term {
			return c.convExpr(env, ctx, e.Then, func(leaves []Value) Term {
				return join.invoke(leaves)
			})
		}
		elseK := func() Term {
			if e.Else == nil {
				return join.invoke(nil)
			}
			return c.convExpr(env, ctx, e.Else, func(leaves []Value) Term {
				return join.invoke(leaves)
			})
		}
		return c.convBool(env, ctx, e.Cond, thenK, elseK)
	case *ast.BlockExpr:
		return c.convBlock(env, ctx, e.B, func(_ *scope, leaves []Value) Term {
			return k(leaves)
		})
	case *ast.CallExpr:
		return c.convCall(env, ctx, e, e.Callee, callArgs{positional: e.Args}, k)
	case *ast.CallNamedExpr:
		return c.convCall(env, ctx, e, e.Callee, callArgs{named: e.Fields}, k)
	case *ast.RaiseExpr:
		return c.convRaise(env, ctx, e)
	case *ast.TryExpr:
		return c.convTry(env, ctx, e, k)
	case *ast.UnpackExpr:
		return c.convUnpack(env, ctx, e, k)
	case *ast.PackExpr:
		return c.convPack(env, ctx, e, k)
	case *ast.IntrinsicExpr:
		return c.convIntrinsic(env, ctx, e, k)
	}
	c.errs.Errorf(e.Span(), "cps: unsupported expression %T", e)
	return k(nil)
}

func (c *converter) arith(op ast.BinOp, l, r Value, name string, k func([]Value) Term) Term {
	d := c.prog.NewVar(name)
	return &Arith{Op: op, L: l, R: r, Dst: d, K: k([]Value{d})}
}

// boolValue materializes a boolean expression as a 0/1 word.
func (c *converter) boolValue(env *scope, ctx *convCtx, e ast.Expr, k func([]Value) Term) Term {
	join := c.reify(kont{f: k}, types.Bool{}, "bool")
	return c.convBool(env, ctx, e,
		func() Term { return join.invoke([]Value{Const(1)}) },
		func() Term { return join.invoke([]Value{Const(0)}) })
}

// convBool compiles a boolean expression as control flow (§4.1):
// kt/kf produce the then/else terms. Each is invoked at most once.
func (c *converter) convBool(env *scope, ctx *convCtx, e ast.Expr, kt, kf func() Term) Term {
	switch e := e.(type) {
	case *ast.BoolLit:
		if e.Value {
			return kt()
		}
		return kf()
	case *ast.UnaryExpr:
		if e.Op == ast.OpNot {
			return c.convBool(env, ctx, e.X, kf, kt)
		}
	case *ast.BinaryExpr:
		switch {
		case e.Op == ast.OpAndAnd:
			// kf may be reached from both tests: reify it.
			f := c.reify(kont{f: func([]Value) Term { return kf() }}, types.Unit, "and_false")
			return c.convBool(env, ctx, e.L,
				func() Term { return c.convBool(env, ctx, e.R, kt, func() Term { return f.invoke(nil) }) },
				func() Term { return f.invoke(nil) })
		case e.Op == ast.OpOrOr:
			t := c.reify(kont{f: func([]Value) Term { return kt() }}, types.Unit, "or_true")
			return c.convBool(env, ctx, e.L,
				func() Term { return t.invoke(nil) },
				func() Term { return c.convBool(env, ctx, e.R, func() Term { return t.invoke(nil) }, kf) })
		case e.Op.IsComparison():
			return c.convExpr(env, ctx, e.L, func(l []Value) Term {
				return c.convExpr(env, ctx, e.R, func(r []Value) Term {
					return &If{Cmp: e.Op, L: l[0], R: r[0], Then: kt(), Else: kf()}
				})
			})
		}
	case *ast.IfExpr: // (if c a else b) used as bool
		thenT := c.reify(kont{f: func([]Value) Term { return kt() }}, types.Unit, "bt")
		elseT := c.reify(kont{f: func([]Value) Term { return kf() }}, types.Unit, "bf")
		return c.convBool(env, ctx, e.Cond,
			func() Term {
				return c.convBool(env, ctx, e.Then,
					func() Term { return thenT.invoke(nil) },
					func() Term { return elseT.invoke(nil) })
			},
			func() Term {
				if e.Else == nil {
					return elseT.invoke(nil)
				}
				return c.convBool(env, ctx, e.Else,
					func() Term { return thenT.invoke(nil) },
					func() Term { return elseT.invoke(nil) })
			})
	}
	// General boolean value: compare against 0.
	return c.convExpr(env, ctx, e, func(v []Value) Term {
		return &If{Cmp: ast.OpNe, L: v[0], R: Const(0), Then: kt(), Else: kf()}
	})
}

// ---------------------------------------------------------------------------
// Calls: inlining and specialization

type callArgs struct {
	positional []ast.Expr
	named      []ast.FieldInit
}

func (c *converter) convCall(env *scope, ctx *convCtx, call ast.Expr, callee ast.Expr,
	args callArgs, k func([]Value) Term) Term {
	fe := c.resolveFun(env, callee)
	if fe == nil {
		return k(nil)
	}
	// Order the argument expressions by declared parameter order.
	params := fe.obj.Type.Params
	ordered := make([]ast.Expr, len(params))
	if args.named != nil {
		byName := map[string]ast.Expr{}
		for _, f := range args.named {
			byName[f.Name] = f.X
		}
		for i, p := range params {
			ordered[i] = byName[p.Name]
		}
	} else {
		copy(ordered, args.positional)
	}
	// Evaluate word-leaf arguments; resolve static (fun/exn) arguments.
	slots := make([]argSlot, len(params))
	var dyn []ast.Expr
	for i, p := range params {
		if ordered[i] == nil {
			c.errs.Errorf(call.Span(), "cps: missing argument %q", p.Name)
			return k(nil)
		}
		switch types.Expand(p.Type).(type) {
		case types.Arrow:
			slots[i].static = c.resolveFun(env, ordered[i])
			slots[i].exprIx = -1
		case types.Exn:
			slots[i].static = c.resolveExn(env, ordered[i])
			slots[i].exprIx = -1
		default:
			slots[i].exprIx = len(dyn)
			dyn = append(dyn, ordered[i])
		}
	}
	return c.convDynArgs(env, ctx, dyn, func(groups [][]Value) Term {
		if c.isConverting(fe.decl) {
			return c.specializedCall(env, ctx, fe, params, slots, groups, k)
		}
		return c.inlineCall(ctx, fe, params, slots, groups, k)
	})
}

// convDynArgs evaluates expressions left to right, keeping each
// expression's leaves grouped.
func (c *converter) convDynArgs(env *scope, ctx *convCtx, es []ast.Expr, k func([][]Value) Term) Term {
	groups := make([][]Value, len(es))
	var rec func(i int) Term
	rec = func(i int) Term {
		if i >= len(es) {
			return k(groups)
		}
		return c.convExpr(env, ctx, es[i], func(leaves []Value) Term {
			groups[i] = leaves
			return rec(i + 1)
		})
	}
	return rec(0)
}

func (c *converter) resolveFun(env *scope, e ast.Expr) *funEnt {
	vr, ok := e.(*ast.VarRef)
	if !ok {
		c.errs.Errorf(e.Span(), "cps: function arguments must be names")
		return nil
	}
	ent, ok := env.lookup(vr.Name)
	if !ok {
		c.errs.Errorf(e.Span(), "cps: unbound function %q", vr.Name)
		return nil
	}
	fe, ok := ent.(*funEnt)
	if !ok {
		c.errs.Errorf(e.Span(), "cps: %q does not denote a function", vr.Name)
		return nil
	}
	return fe
}

func (c *converter) resolveExn(env *scope, e ast.Expr) *exnEnt {
	vr, ok := e.(*ast.VarRef)
	if !ok {
		c.errs.Errorf(e.Span(), "cps: exception arguments must be names")
		return nil
	}
	ent, ok := env.lookup(vr.Name)
	if !ok {
		c.errs.Errorf(e.Span(), "cps: unbound exception %q", vr.Name)
		return nil
	}
	xe, ok := ent.(*exnEnt)
	if !ok {
		c.errs.Errorf(e.Span(), "cps: %q does not denote an exception", vr.Name)
		return nil
	}
	return xe
}

// argSlot describes how one call argument is passed: statically (a
// function or exception entity) or dynamically (word leaves, located
// by index in the evaluation order).
type argSlot struct {
	static entity
	exprIx int
}

// inlineCall converts the callee's body in place (§4.3: full inlining
// of non-tail calls; tail calls to non-recursive functions inline the
// same way and later contraction keeps code size in check).
func (c *converter) inlineCall(ctx *convCtx, fe *funEnt, params []types.Field,
	slots []argSlot, groups [][]Value, k func([]Value) Term) Term {
	env := fe.env
	for i, p := range params {
		if slots[i].static != nil {
			env = env.bind(p.Name, slots[i].static)
		} else {
			env = env.bind(p.Name, &valEnt{leaves: groups[slots[i].exprIx], t: p.Type})
		}
	}
	c.converting = append(c.converting, fe.decl)
	defer func() { c.converting = c.converting[:len(c.converting)-1] }()
	inner := &convCtx{ret: kont{f: k}}
	return c.convBlock(env, inner, fe.decl.Body, func(_ *scope, leaves []Value) Term {
		return inner.ret.invoke(leaves)
	})
}

// specializedCall jumps to a memoized specialization of a recursive
// function. The memo key covers everything except the word-leaf
// arguments: the declaration, the return continuation label, and the
// identities of static (function/exception) arguments.
func (c *converter) specializedCall(env *scope, ctx *convCtx, fe *funEnt,
	params []types.Field, slots []argSlot, groups [][]Value, k func([]Value) Term) Term {
	ret := c.reify(kont{f: k}, fe.obj.Type.Result, fe.decl.Name+"_ret")
	key := fmt.Sprintf("%p|R%d", fe.decl, ret.label)
	for i := range params {
		if slots[i].static != nil {
			switch s := slots[i].static.(type) {
			case *funEnt:
				key += fmt.Sprintf("|F%p", s)
			case *exnEnt:
				key += fmt.Sprintf("|X%d", s.label)
			}
		}
	}
	var wordArgs []Value
	for i := range params {
		if slots[i].static == nil {
			wordArgs = append(wordArgs, groups[slots[i].exprIx]...)
		}
	}
	if l, ok := c.memo[key]; ok {
		return &App{F: l, Args: wordArgs}
	}
	label := c.prog.NewLabel()
	c.memo[key] = label
	benv := fe.env
	var formals []Var
	for i, p := range params {
		if slots[i].static != nil {
			benv = benv.bind(p.Name, slots[i].static)
			continue
		}
		leaves := c.freshLeaves(p.Name, p.Type)
		formals = append(formals, varsOf(leaves)...)
		benv = benv.bind(p.Name, &valEnt{leaves: leaves, t: p.Type})
	}
	inner := &convCtx{ret: ret}
	c.converting = append(c.converting, fe.decl)
	body := c.convBlock(benv, inner, fe.decl.Body, func(_ *scope, leaves []Value) Term {
		return ret.invoke(leaves)
	})
	c.converting = c.converting[:len(c.converting)-1]
	c.prog.AddFun(&Fun{Label: label, Name: fe.decl.Name, Kind: KindFun, Params: formals, Body: body})
	return &App{F: label, Args: wordArgs}
}

// ---------------------------------------------------------------------------
// Exceptions

func (c *converter) convRaise(env *scope, ctx *convCtx, e *ast.RaiseExpr) Term {
	xe := c.resolveExn(env, e.Exn)
	if xe == nil {
		return &Halt{}
	}
	var ordered []ast.Expr
	if e.Named {
		byName := map[string]ast.Expr{}
		for _, f := range e.Fields {
			byName[f.Name] = f.X
		}
		for _, p := range xe.t.Params {
			ordered = append(ordered, byName[p.Name])
		}
	} else {
		ordered = e.Args
	}
	return c.convExprList(env, ctx, ordered, func(leaves []Value) Term {
		return &App{F: xe.label, Args: leaves}
	})
}

func (c *converter) convTry(env *scope, ctx *convCtx, e *ast.TryExpr, k func([]Value) Term) Term {
	resultT := c.info.TypeOf(e)
	join := c.reify(kont{f: k}, resultT, "try_join")
	benv := env
	for i := range e.Handlers {
		h := &e.Handlers[i]
		obj := c.info.Exns[h]
		henv := env
		var formals []Var
		for _, p := range obj.Type.Params {
			leaves := c.freshLeaves(p.Name, p.Type)
			formals = append(formals, varsOf(leaves)...)
			henv = henv.bind(p.Name, &valEnt{leaves: leaves, t: p.Type})
		}
		body := c.convBlock(henv, ctx, h.Body, func(_ *scope, leaves []Value) Term {
			return join.invoke(leaves)
		})
		l := c.prog.NewLabel()
		c.prog.AddFun(&Fun{Label: l, Name: "handle_" + h.Name, Kind: KindCont,
			Params: formals, Body: body})
		benv = benv.bind(h.Name, &exnEnt{label: l, t: obj.Type})
	}
	return c.convBlock(benv, ctx, e.Body, func(_ *scope, leaves []Value) Term {
		return join.invoke(leaves)
	})
}

// ---------------------------------------------------------------------------
// Layouts: pack and unpack

// convUnpack extracts every leaf of the layout (§3.2: formally all
// bitfields get extracted; dead-code elimination removes the unused
// extractions, §4.4).
func (c *converter) convUnpack(env *scope, ctx *convCtx, e *ast.UnpackExpr, k func([]Value) Term) Term {
	l := c.info.Layouts[e]
	return c.convExpr(env, ctx, e.X, func(words []Value) Term {
		leaves := l.Leaves()
		out := make([]Value, len(leaves))
		var rec func(i int) Term
		rec = func(i int) Term {
			if i >= len(leaves) {
				return k(out)
			}
			lf := leaves[i]
			return c.emitExtract(words, lf, func(v Value) Term {
				out[i] = v
				return rec(i + 1)
			})
		}
		return rec(0)
	})
}

// emitExtract generates the shift/mask chain for one leaf.
func (c *converter) emitExtract(words []Value, lf layout.Leaf, k func(Value) Term) Term {
	plan := layout.ExtractPlan(lf.Offset, lf.Bits)
	name := "x_" + lf.Path
	var acc Value
	var rec func(ti int) Term
	rec = func(ti int) Term {
		if ti >= len(plan.Terms) {
			return k(acc)
		}
		t := plan.Terms[ti]
		cur := words[t.Word]
		steps := func(v Value, next func(Value) Term) Term {
			step := func(op ast.BinOp, l Value, r Value, then func(Value) Term) Term {
				d := c.prog.NewVar(name)
				return &Arith{Op: op, L: l, R: r, Dst: d, K: then(d)}
			}
			if t.Shr > 0 {
				return step(ast.OpShr, v, Const(t.Shr), func(v2 Value) Term {
					return maskStep(c, t, name, v2, func(v3 Value) Term {
						return shlStep(c, t, name, v3, next)
					})
				})
			}
			return maskStep(c, t, name, v, func(v2 Value) Term {
				return shlStep(c, t, name, v2, next)
			})
		}
		return steps(cur, func(part Value) Term {
			if acc == nil {
				acc = part
				return rec(ti + 1)
			}
			prev := acc
			d := c.prog.NewVar(name)
			acc = d
			return &Arith{Op: ast.OpOr, L: prev, R: part, Dst: d, K: rec(ti + 1)}
		})
	}
	return rec(0)
}

func maskStep(c *converter, t layout.Term, name string, v Value, next func(Value) Term) Term {
	if t.Mask == 0xffffffff || (t.Shr != 0 && 0xffffffff>>t.Shr == t.Mask) {
		return next(v)
	}
	d := c.prog.NewVar(name)
	return &Arith{Op: ast.OpAnd, L: v, R: Const(t.Mask), Dst: d, K: next(d)}
}

func shlStep(c *converter, t layout.Term, name string, v Value, next func(Value) Term) Term {
	if t.Shl == 0 {
		return next(v)
	}
	d := c.prog.NewVar(name)
	return &Arith{Op: ast.OpShl, L: v, R: Const(t.Shl), Dst: d, K: next(d)}
}

// convPack builds the packed words from the provided leaves, choosing
// one alternative per overlay. Gap bits are zero.
func (c *converter) convPack(env *scope, ctx *convCtx, e *ast.PackExpr, k func([]Value) Term) Term {
	l := c.info.Layouts[e]
	// Gather (leaves, expr) entries by walking the layout against the
	// field initializers, mirroring the checker. Each entry's
	// expression yields exactly len(entry.leaves) word values, in leaf
	// order; the common case is a single leaf.
	type packEntry struct {
		leaves []layout.Leaf
		x      ast.Expr
	}
	var entries []packEntry
	var gather func(lay *layout.Layout, base int, fields []ast.FieldInit)
	fromUnpacked := func(sub *layout.Layout, base int, x ast.Expr) {
		// A sub-layout given as an unpacked(sub) value: its flattened
		// leaves correspond positionally to sub.Leaves(). Overlays
		// would deposit overlapping alternatives, so they are rejected.
		if len(sub.Overlays()) > 0 {
			c.errs.Errorf(x.Span(), "cps: packing an unpacked value with overlays is ambiguous; use a record literal choosing one alternative")
			return
		}
		subLeaves := sub.Leaves()
		shifted := make([]layout.Leaf, len(subLeaves))
		for i, lf := range subLeaves {
			lf.Offset += base
			shifted[i] = lf
		}
		entries = append(entries, packEntry{leaves: shifted, x: x})
	}
	gather = func(lay *layout.Layout, base int, fields []ast.FieldInit) {
		byName := map[string]ast.FieldInit{}
		for _, f := range fields {
			byName[f.Name] = f
		}
		for _, lf := range lay.Fields {
			if lf.Name == "" {
				continue
			}
			f, ok := byName[lf.Name]
			if !ok {
				continue // checker reported
			}
			off := base + lf.Offset
			switch {
			case len(lf.Overlay) > 0:
				rec, ok := f.X.(*ast.RecordExpr)
				if !ok || len(rec.Fields) != 1 {
					continue
				}
				choice := rec.Fields[0]
				for _, a := range lf.Overlay {
					if a.Name != choice.Name {
						continue
					}
					if a.Sub != nil {
						if sub, ok := choice.X.(*ast.RecordExpr); ok {
							gather(a.Sub, off, sub.Fields)
						} else {
							fromUnpacked(a.Sub, off, choice.X)
						}
					} else {
						entries = append(entries, packEntry{
							leaves: []layout.Leaf{{Path: lf.Name, Offset: off, Bits: a.Bits}},
							x:      choice.X,
						})
					}
				}
			case lf.Sub != nil:
				if sub, ok := f.X.(*ast.RecordExpr); ok {
					gather(lf.Sub, off, sub.Fields)
				} else {
					fromUnpacked(lf.Sub, off, f.X)
				}
			default:
				entries = append(entries, packEntry{
					leaves: []layout.Leaf{{Path: lf.Name, Offset: off, Bits: lf.Bits}},
					x:      f.X,
				})
			}
		}
	}
	gather(l, 0, e.Fields)

	exprs := make([]ast.Expr, len(entries))
	for i, en := range entries {
		exprs[i] = en.x
	}
	return c.convDynArgs(env, ctx, exprs, func(groups [][]Value) Term {
		// Accumulate each output word as an OR of deposited parts.
		nw := l.Words()
		acc := make([]Value, nw)
		type depositJob struct {
			span layout.DepositSpan
			val  Value
		}
		var jobs []depositJob
		for i, en := range entries {
			for li, lf := range en.leaves {
				if li >= len(groups[i]) {
					break // conversion error already reported
				}
				v := groups[i][li]
				for _, d := range layout.DepositPlan(lf.Offset, lf.Bits) {
					jobs = append(jobs, depositJob{span: d, val: v})
				}
			}
		}
		var rec func(j int) Term
		rec = func(j int) Term {
			if j >= len(jobs) {
				out := make([]Value, nw)
				for i := range out {
					if acc[i] == nil {
						out[i] = Const(0)
					} else {
						out[i] = acc[i]
					}
				}
				return k(out)
			}
			d := jobs[j].span
			v := jobs[j].val
			emit := func(op ast.BinOp, lv, rv Value, next func(Value) Term) Term {
				dv := c.prog.NewVar("pk")
				return &Arith{Op: op, L: lv, R: rv, Dst: dv, K: next(dv)}
			}
			step1 := func(next func(Value) Term) Term {
				if d.Shr > 0 {
					return emit(ast.OpShr, v, Const(d.Shr), next)
				}
				if d.Shl > 0 {
					return emit(ast.OpShl, v, Const(d.Shl), next)
				}
				return next(v)
			}
			return step1(func(part Value) Term {
				mask := func(next func(Value) Term) Term {
					if d.Mask == 0xffffffff {
						return next(part)
					}
					return emit(ast.OpAnd, part, Const(d.Mask), next)
				}
				return mask(func(masked Value) Term {
					if acc[d.Word] == nil {
						acc[d.Word] = masked
						return rec(j + 1)
					}
					return emit(ast.OpOr, acc[d.Word], masked, func(merged Value) Term {
						acc[d.Word] = merged
						return rec(j + 1)
					})
				})
			})
		}
		return rec(0)
	})
}

// ---------------------------------------------------------------------------
// Intrinsics

func (c *converter) convIntrinsic(env *scope, ctx *convCtx, e *ast.IntrinsicExpr, k func([]Value) Term) Term {
	size := e.Size
	if size == 0 {
		size = 1
		if e.Op == ast.OpSDRAM {
			size = 2
		}
	}
	switch e.Op {
	case ast.OpSRAM, ast.OpSDRAM, ast.OpScratch, ast.OpRFIFO:
		space := map[ast.IntrinsicOp]Space{
			ast.OpSRAM: SpaceSRAM, ast.OpSDRAM: SpaceSDRAM,
			ast.OpScratch: SpaceScratch, ast.OpRFIFO: SpaceRFIFO,
		}[e.Op]
		return c.convExpr(env, ctx, e.Args[0], func(addr []Value) Term {
			dsts := make([]Var, size)
			out := make([]Value, size)
			for i := range dsts {
				dsts[i] = c.prog.NewVar(fmt.Sprintf("%s%d", space, i))
				out[i] = dsts[i]
			}
			return &MemRead{Space: space, Addr: addr[0], Dsts: dsts, K: k(out)}
		})
	case ast.OpHash:
		return c.convExpr(env, ctx, e.Args[0], func(src []Value) Term {
			d := c.prog.NewVar("hash")
			return &Special{Kind: SpecHash, Args: src, Dsts: []Var{d}, K: k([]Value{d})}
		})
	case ast.OpBTS:
		return c.convExprList(env, ctx, e.Args, func(args []Value) Term {
			d := c.prog.NewVar("bts")
			return &Special{Kind: SpecBTS, Args: args, Dsts: []Var{d}, K: k([]Value{d})}
		})
	case ast.OpCSR:
		return c.convExpr(env, ctx, e.Args[0], func(addr []Value) Term {
			d := c.prog.NewVar("csr")
			return &Special{Kind: SpecCSRRead, Args: addr, Dsts: []Var{d}, K: k([]Value{d})}
		})
	case ast.OpCtxSwap:
		return &Special{Kind: SpecCtxSwap, K: k(nil)}
	}
	c.errs.Errorf(e.Sp, "cps: unsupported intrinsic %v", e.Op)
	return k(nil)
}

// ---------------------------------------------------------------------------
// Leaf range helpers

// leafRangeField locates the flattened-leaf range of a record field.
func leafRangeField(t types.Type, name string) (start, count int) {
	rec := types.Expand(t).(types.Record)
	off := 0
	for _, f := range rec.Fields {
		n := types.WordCount(f.Type)
		if f.Name == name {
			return off, n
		}
		off += n
	}
	panic(fmt.Sprintf("cps: no field %q in %s", name, t))
}

// leafRangeIndex locates the flattened-leaf range of a tuple component.
func leafRangeIndex(t types.Type, idx int) (start, count int) {
	tup := types.Expand(t).(types.Tuple)
	off := 0
	for i, e := range tup.Elems {
		n := types.WordCount(e)
		if i == idx {
			return off, n
		}
		off += n
	}
	panic(fmt.Sprintf("cps: index %d out of range in %s", idx, t))
}

package cps

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/types"
)

// Machine is the reference memory model used to execute CPS programs
// directly. It is the oracle for differential tests: the same memory
// image can be given to the IXP simulator and the results compared.
type Machine struct {
	SRAM    []uint32
	SDRAM   []uint32
	Scratch []uint32
	CSR     map[uint32]uint32
	RFIFO   []uint32
	TFIFO   []uint32
	// Hash models the micro-engine hash unit. The default is a
	// multiplicative hash; the simulator uses the same function.
	Hash func(uint32) uint32

	// Stats
	Reads, Writes int
}

// NewMachine returns a machine with the given memory sizes (in words).
func NewMachine(sram, sdram, scratch int) *Machine {
	return &Machine{
		SRAM:    make([]uint32, sram),
		SDRAM:   make([]uint32, sdram),
		Scratch: make([]uint32, scratch),
		CSR:     map[uint32]uint32{},
		Hash:    DefaultHash,
	}
}

// DefaultHash is the hash-unit model shared by the evaluator and the
// simulator: a 48-bit-ish multiplicative mix truncated to 32 bits.
func DefaultHash(x uint32) uint32 {
	h := uint64(x) * 0x9e3779b97f4a7c15
	return uint32(h>>16) ^ uint32(h)
}

func (m *Machine) space(s Space) ([]uint32, error) {
	switch s {
	case SpaceSRAM:
		return m.SRAM, nil
	case SpaceSDRAM:
		return m.SDRAM, nil
	case SpaceScratch:
		return m.Scratch, nil
	}
	return nil, fmt.Errorf("cps eval: space %v is not random-access", s)
}

// EvalResult is the outcome of running a program.
type EvalResult struct {
	Results []uint32
	Steps   int
}

// Eval runs the program on m with the given entry arguments, returning
// the Halt results. It fails on unbound variables, bad addresses, or
// step-budget exhaustion (runaway loops).
func (p *Program) Eval(m *Machine, args []uint32, maxSteps int) (*EvalResult, error) {
	entry, ok := p.Funs[p.Entry]
	if !ok {
		return nil, fmt.Errorf("cps eval: no entry function")
	}
	if len(args) != len(entry.Params) {
		return nil, fmt.Errorf("cps eval: entry takes %d args, got %d", len(entry.Params), len(args))
	}
	env := make(map[Var]uint32, 64)
	for i, v := range entry.Params {
		env[v] = args[i]
	}
	t := entry.Body
	steps := 0
	val := func(v Value) (uint32, error) {
		switch v := v.(type) {
		case Const:
			return uint32(v), nil
		case Var:
			x, ok := env[v]
			if !ok {
				return 0, fmt.Errorf("cps eval: unbound %s", p.VarName(v))
			}
			return x, nil
		}
		return 0, fmt.Errorf("cps eval: bad value %T", v)
	}
	for {
		steps++
		if steps > maxSteps {
			return nil, fmt.Errorf("cps eval: step budget %d exhausted", maxSteps)
		}
		switch tt := t.(type) {
		case *Arith:
			l, err := val(tt.L)
			if err != nil {
				return nil, err
			}
			r, err := val(tt.R)
			if err != nil {
				return nil, err
			}
			x, err := evalArith(tt.Op, l, r)
			if err != nil {
				return nil, err
			}
			env[tt.Dst] = x
			t = tt.K
		case *MemRead:
			mem, err := m.space(readSpace(tt.Space))
			if err != nil {
				return nil, err
			}
			a, err := val(tt.Addr)
			if err != nil {
				return nil, err
			}
			if tt.Space == SpaceRFIFO {
				for i, d := range tt.Dsts {
					idx := int(a) + i
					if idx >= len(m.RFIFO) {
						return nil, fmt.Errorf("cps eval: rfifo read %d beyond %d", idx, len(m.RFIFO))
					}
					env[d] = m.RFIFO[idx]
				}
				m.Reads++
				t = tt.K
				continue
			}
			if err := checkRange(tt.Space, a, len(tt.Dsts), len(mem)); err != nil {
				return nil, err
			}
			for i, d := range tt.Dsts {
				env[d] = mem[int(a)+i]
			}
			m.Reads++
			t = tt.K
		case *MemWrite:
			a, err := val(tt.Addr)
			if err != nil {
				return nil, err
			}
			if tt.Space == SpaceTFIFO {
				for _, s := range tt.Srcs {
					x, err := val(s)
					if err != nil {
						return nil, err
					}
					m.TFIFO = append(m.TFIFO, x)
				}
				m.Writes++
				t = tt.K
				continue
			}
			mem, err := m.space(tt.Space)
			if err != nil {
				return nil, err
			}
			if err := checkRange(tt.Space, a, len(tt.Srcs), len(mem)); err != nil {
				return nil, err
			}
			for i, s := range tt.Srcs {
				x, err := val(s)
				if err != nil {
					return nil, err
				}
				mem[int(a)+i] = x
			}
			m.Writes++
			t = tt.K
		case *Special:
			switch tt.Kind {
			case SpecHash:
				x, err := val(tt.Args[0])
				if err != nil {
					return nil, err
				}
				env[tt.Dsts[0]] = m.Hash(x)
			case SpecBTS:
				a, err := val(tt.Args[0])
				if err != nil {
					return nil, err
				}
				s, err := val(tt.Args[1])
				if err != nil {
					return nil, err
				}
				if int(a) >= len(m.SRAM) {
					return nil, fmt.Errorf("cps eval: bts address %d out of range", a)
				}
				old := m.SRAM[a]
				m.SRAM[a] = old | s
				env[tt.Dsts[0]] = old
			case SpecCSRRead:
				a, err := val(tt.Args[0])
				if err != nil {
					return nil, err
				}
				env[tt.Dsts[0]] = m.CSR[a]
			case SpecCSRWrite:
				a, err := val(tt.Args[0])
				if err != nil {
					return nil, err
				}
				x, err := val(tt.Args[1])
				if err != nil {
					return nil, err
				}
				m.CSR[a] = x
			case SpecCtxSwap:
				// No observable effect in the reference semantics.
			}
			t = tt.K
		case *Clone:
			x, err := val(tt.Src)
			if err != nil {
				return nil, err
			}
			env[tt.Dst] = x
			t = tt.K
		case *If:
			l, err := val(tt.L)
			if err != nil {
				return nil, err
			}
			r, err := val(tt.R)
			if err != nil {
				return nil, err
			}
			if evalCmp(tt.Cmp, l, r) {
				t = tt.Then
			} else {
				t = tt.Else
			}
		case *App:
			f, ok := p.Funs[tt.F]
			if !ok {
				return nil, fmt.Errorf("cps eval: undefined label L%d", tt.F)
			}
			if len(tt.Args) != len(f.Params) {
				return nil, fmt.Errorf("cps eval: L%d %s takes %d args, got %d",
					f.Label, f.Name, len(f.Params), len(tt.Args))
			}
			vals := make([]uint32, len(tt.Args))
			for i, a := range tt.Args {
				x, err := val(a)
				if err != nil {
					return nil, err
				}
				vals[i] = x
			}
			for i, pv := range f.Params {
				env[pv] = vals[i]
			}
			t = f.Body
		case *Halt:
			out := make([]uint32, len(tt.Results))
			for i, r := range tt.Results {
				x, err := val(r)
				if err != nil {
					return nil, err
				}
				out[i] = x
			}
			return &EvalResult{Results: out, Steps: steps}, nil
		default:
			return nil, fmt.Errorf("cps eval: unknown term %T", t)
		}
	}
}

func readSpace(s Space) Space {
	if s == SpaceRFIFO {
		return SpaceSRAM // placeholder; handled separately
	}
	return s
}

func checkRange(s Space, addr uint32, n, size int) error {
	if s == SpaceSDRAM && addr%2 != 0 {
		return fmt.Errorf("cps eval: sdram access at odd word address %d (8-byte alignment)", addr)
	}
	if int(addr)+n > size {
		return fmt.Errorf("cps eval: %v access [%d,%d) beyond size %d", s, addr, int(addr)+n, size)
	}
	return nil
}

func evalArith(op ast.BinOp, l, r uint32) (uint32, error) {
	if v, ok := types.EvalBinop(op, l, r); ok {
		return v, nil
	}
	return 0, fmt.Errorf("cps eval: bad arithmetic %v (division by zero or non-word op)", op)
}

func evalCmp(op ast.BinOp, l, r uint32) bool {
	switch op {
	case ast.OpEq:
		return l == r
	case ast.OpNe:
		return l != r
	case ast.OpLt:
		return l < r
	case ast.OpGt:
		return l > r
	case ast.OpLe:
		return l <= r
	case ast.OpGe:
		return l >= r
	}
	return false
}

package cps

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/source"
	"repro/internal/types"
)

// compile parses, checks, and CPS-converts src with entry "main".
func compile(t *testing.T, src string) *Program {
	t.Helper()
	f := source.NewFile("t.nova", src)
	errs := source.NewErrorList(f)
	prog := parser.Parse(f, errs)
	if errs.HasErrors() {
		t.Fatalf("parse: %v", errs)
	}
	info := types.Check(prog, errs)
	if errs.HasErrors() {
		t.Fatalf("check: %v", errs)
	}
	p := Convert(info, "main", errs)
	if errs.HasErrors() {
		t.Fatalf("convert: %v", errs)
	}
	return p
}

// run executes the program on a fresh machine and returns the results.
func run(t *testing.T, p *Program, m *Machine, args ...uint32) []uint32 {
	t.Helper()
	if m == nil {
		m = NewMachine(1024, 1024, 256)
	}
	res, err := p.Eval(m, args, 1_000_000)
	if err != nil {
		t.Fatalf("eval: %v\nprogram:\n%s", err, p)
	}
	return res.Results
}

func TestArithmetic(t *testing.T) {
	p := compile(t, `fun main(a: word, b: word) -> word { (a + b) * 2 - (a & b) }`)
	got := run(t, p, nil, 7, 9)
	want := (uint32(7)+9)*2 - (7 & 9)
	if got[0] != want {
		t.Fatalf("got %d, want %d", got[0], want)
	}
}

func TestIfAsValue(t *testing.T) {
	p := compile(t, `fun main(a: word) -> word { if (a > 10) a - 10 else 10 - a }`)
	if got := run(t, p, nil, 25); got[0] != 15 {
		t.Fatalf("got %d", got[0])
	}
	if got := run(t, p, nil, 3); got[0] != 7 {
		t.Fatalf("got %d", got[0])
	}
}

func TestBoolMaterialization(t *testing.T) {
	p := compile(t, `fun main(a: word, b: word) -> bool { let c = a < b && b < 100; c }`)
	if got := run(t, p, nil, 5, 50); got[0] != 1 {
		t.Fatalf("5<50<100: got %d", got[0])
	}
	if got := run(t, p, nil, 5, 200); got[0] != 0 {
		t.Fatalf("200: got %d", got[0])
	}
}

func TestTailLoop(t *testing.T) {
	p := compile(t, `
fun main(n: word) -> word {
  fun loop(k: word, acc: word) -> word {
    if (k == 0) acc else loop(k - 1, acc + k)
  }
  loop(n, 0)
}`)
	if got := run(t, p, nil, 10); got[0] != 55 {
		t.Fatalf("sum 1..10 = %d", got[0])
	}
	// The loop must be a real loop: a single specialization, not
	// unbounded inlining. 10 iterations must not take >1000 steps.
	res, err := p.Eval(NewMachine(16, 16, 16), []uint32{1000}, 100_000)
	if err != nil {
		t.Fatalf("big loop: %v", err)
	}
	if res.Results[0] != 500500 {
		t.Fatalf("sum 1..1000 = %d", res.Results[0])
	}
}

func TestWhileLoop(t *testing.T) {
	p := compile(t, `
fun main(n: word) -> word {
  let acc = 0;
  while (n > 0) {
    let acc = acc + n;
    let n = n - 1;
  }
  acc
}`)
	if got := run(t, p, nil, 10); got[0] != 55 {
		t.Fatalf("while sum = %d", got[0])
	}
	if got := run(t, p, nil, 0); got[0] != 0 {
		t.Fatalf("zero-trip = %d", got[0])
	}
}

func TestInlining(t *testing.T) {
	p := compile(t, `
fun sq(x: word) -> word { x * x }
fun main(a: word) -> word { sq(a) + sq(a + 1) }`)
	if got := run(t, p, nil, 3); got[0] != 9+16 {
		t.Fatalf("got %d", got[0])
	}
}

func TestFunctionArgument(t *testing.T) {
	p := compile(t, `
fun apply(f: (word) -> word, x: word) -> word { f(x) }
fun inc(v: word) -> word { v + 1 }
fun dbl(v: word) -> word { v * 2 }
fun main(a: word) -> word { apply(inc, a) + apply(dbl, a) }`)
	if got := run(t, p, nil, 10); got[0] != 11+20 {
		t.Fatalf("got %d", got[0])
	}
}

func TestRecordsAndTuples(t *testing.T) {
	p := compile(t, `
fun main(a: word, b: word) -> word {
  let r = [x = a, y = (b, a + b)];
  r.y.0 + r.y.1 + r.x
}`)
	if got := run(t, p, nil, 3, 4); got[0] != 4+7+3 {
		t.Fatalf("got %d", got[0])
	}
}

func TestMemoryOps(t *testing.T) {
	p := compile(t, `
fun main() -> word {
  sram(100) <- (11, 22, 33, 44);
  let (a, b, c, d) = sram[4](100);
  sdram(10) <- (a + b, c + d);
  let (x, y) = sdram[2](10);
  scratch(5) <- x + y;
  scratch[1](5)
}`)
	m := NewMachine(1024, 1024, 256)
	if got := run(t, p, m); got[0] != 110 {
		t.Fatalf("got %d", got[0])
	}
	if m.SRAM[102] != 33 {
		t.Fatalf("sram[102] = %d", m.SRAM[102])
	}
}

func TestExceptions(t *testing.T) {
	p := compile(t, `
fun g[v: word, x1: exn[b: word, c: word], x2: exn()] -> word {
  if (v == 1) raise x2()
  else if (v == 2) raise x1[b = 10, c = 20]
  else v * 100
}
fun main(a: word) -> word {
  try {
    g[v = a, x2 = X2, x1 = X1]
  }
  handle X1 [b: word, c: word] { b + c }
  handle X2 () { 7 }
}`)
	if got := run(t, p, nil, 1); got[0] != 7 {
		t.Fatalf("X2 path: got %d", got[0])
	}
	if got := run(t, p, nil, 2); got[0] != 30 {
		t.Fatalf("X1 path: got %d", got[0])
	}
	if got := run(t, p, nil, 5); got[0] != 500 {
		t.Fatalf("normal path: got %d", got[0])
	}
}

func TestUnpack(t *testing.T) {
	p := compile(t, `
layout h = { version : 4, priority : 4, flow : 24 };
fun main(w: word) -> word {
  let u = unpack[h]((w));
  u.version * 1000 + u.priority * 100 + u.flow
}`)
	// 0x6_5_000123: version=6, priority=5, flow=0x123
	w := uint32(6)<<28 | uint32(5)<<24 | 0x123
	if got := run(t, p, nil, w); got[0] != 6000+500+0x123 {
		t.Fatalf("got %d", got[0])
	}
}

func TestUnpackStraddle(t *testing.T) {
	p := compile(t, `
layout l2 = { a : 16, b : 32, c : 16 };
fun main(w0: word, w1: word) -> word {
  let u = unpack[l2]((w0, w1));
  u.b
}`)
	// b occupies bits 16..48: low 16 of w0 and high 16 of w1.
	w0 := uint32(0xAAAA_1234)
	w1 := uint32(0x5678_BBBB)
	if got := run(t, p, nil, w0, w1); got[0] != 0x1234_5678 {
		t.Fatalf("got %#x", got[0])
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	p := compile(t, `
layout h = {
  verpri : overlay { whole : 8 | parts : { version : 4, priority : 4 } },
  flow : 24
};
fun main(v: word, pr: word, fl: word) -> word {
  let w = pack[h] [ verpri = [ parts = [ version = v, priority = pr ] ], flow = fl ];
  let u = unpack[h]((w));
  u.verpri.whole
}`)
	if got := run(t, p, nil, 6, 5, 0x123); got[0] != 0x65 {
		t.Fatalf("whole = %#x, want 0x65", got[0])
	}
}

func TestPackWithAlignmentGaps(t *testing.T) {
	p := compile(t, `
layout lyt = { x : 16, y : 32, z : 8 };
fun main(x: word, y: word, z: word) -> (word, word, word) {
  pack[{16} ## lyt ## {24}] [ x = x, y = y, z = z ]
}`)
	got := run(t, p, nil, 0x1234, 0xdeadbeef, 0x7f)
	if got[0] != 0x0000_1234 {
		t.Fatalf("w0 = %#x", got[0])
	}
	if got[1] != 0xdeadbeef {
		t.Fatalf("w1 = %#x", got[1])
	}
	if got[2] != 0x7f00_0000 {
		t.Fatalf("w2 = %#x", got[2])
	}
}

func TestHashAndBTS(t *testing.T) {
	p := compile(t, `
fun main(x: word) -> (word, word) {
  let h = hash(x);
  let old = sram_bts(50, 0x4);
  (h, old)
}`)
	m := NewMachine(1024, 16, 16)
	m.SRAM[50] = 0x3
	got := run(t, p, m, 42)
	if got[0] != DefaultHash(42) {
		t.Fatalf("hash = %#x", got[0])
	}
	if got[1] != 0x3 || m.SRAM[50] != 0x7 {
		t.Fatalf("bts old=%#x mem=%#x", got[1], m.SRAM[50])
	}
}

func TestConstants(t *testing.T) {
	p := compile(t, `
let BASE = 0x40;
let STEP = BASE / 4;
fun main(i: word) -> word { BASE + STEP * i }`)
	if got := run(t, p, nil, 2); got[0] != 0x40+0x10*2 {
		t.Fatalf("got %#x", got[0])
	}
}

func TestPaperFigure3Shape(t *testing.T) {
	// The program of Figure 3: two reads, two arithmetic ops, two writes.
	p := compile(t, `
fun main() {
  let (a, b, c, d) = sram[4](100);
  let (e, f, g, h, i, j) = sram[6](200);
  let u = a + c;
  let v = g + h;
  sram(300) <- (b, e, v, u);
  sram(500) <- (f, j, d, i);
}`)
	m := NewMachine(1024, 16, 16)
	for k := 0; k < 4; k++ {
		m.SRAM[100+k] = uint32(k + 1) // a..d = 1..4
	}
	for k := 0; k < 6; k++ {
		m.SRAM[200+k] = uint32(10 * (k + 1)) // e..j = 10..60
	}
	run(t, p, m)
	// u = a+c = 4; v = g+h = 70
	want300 := []uint32{2, 10, 70, 4}
	for k, w := range want300 {
		if m.SRAM[300+k] != w {
			t.Fatalf("sram[%d] = %d, want %d", 300+k, m.SRAM[300+k], w)
		}
	}
	want500 := []uint32{20, 60, 4, 50}
	for k, w := range want500 {
		if m.SRAM[500+k] != w {
			t.Fatalf("sram[%d] = %d, want %d", 500+k, m.SRAM[500+k], w)
		}
	}
}

func TestDeadFieldsNotExtracted(t *testing.T) {
	// §4.4: u1.a, u2.a, u2.c are never used; after conversion they are
	// still present but DCE (tested in the opt package) removes them.
	// Here we only check the program runs correctly.
	p := compile(t, `
layout pl = { a : 16, b : 32, c : 16 };
fun main(p1: word[2], p2: word[2]) -> word {
  let u1 = unpack[pl](p1);
  let u2 = unpack[pl](p2);
  (if (u1.c > 10) u1 else u2).b
}`)
	// p1: a=1, b=0xCAFEBABE, c=99 (c>10, pick u1)
	p1w0 := uint32(1)<<16 | 0xCAFE
	p1w1 := uint32(0xBABE)<<16 | 99
	p2w0 := uint32(2)<<16 | 0x1111
	p2w1 := uint32(0x2222)<<16 | 3
	if got := run(t, p, nil, p1w0, p1w1, p2w0, p2w1); got[0] != 0xCAFEBABE {
		t.Fatalf("got %#x", got[0])
	}
	// c <= 10: pick u2
	p1w1 = uint32(0xBABE)<<16 | 5
	if got := run(t, p, nil, p1w0, p1w1, p2w0, p2w1); got[0] != 0x1111_2222 {
		t.Fatalf("got %#x", got[0])
	}
}

func TestReturnEarly(t *testing.T) {
	p := compile(t, `
fun main(a: word) -> word {
  if (a == 0) { return 99 };
  a + 1
}`)
	if got := run(t, p, nil, 0); got[0] != 99 {
		t.Fatalf("got %d", got[0])
	}
	if got := run(t, p, nil, 5); got[0] != 6 {
		t.Fatalf("got %d", got[0])
	}
}

func TestMutualRecursion(t *testing.T) {
	p := compile(t, `
fun main(n: word) -> word {
  fun even(k: word) -> word { if (k == 0) 1 else odd(k - 1) }
  fun odd(k: word) -> word { if (k == 0) 0 else even(k - 1) }
  even(n)
}`)
	if got := run(t, p, nil, 10); got[0] != 1 {
		t.Fatalf("even(10) = %d", got[0])
	}
	if got := run(t, p, nil, 7); got[0] != 0 {
		t.Fatalf("even(7) = %d", got[0])
	}
}

func TestShadowingCapture(t *testing.T) {
	// A nested function must see the binding at its definition point,
	// not a later shadowing one.
	p := compile(t, `
fun main() -> word {
  let y = 1;
  fun f() -> word { y }
  let y = 2;
  f() * 10 + y
}`)
	if got := run(t, p, nil); got[0] != 12 {
		t.Fatalf("got %d, want 12", got[0])
	}
}

func TestLoopCarriedTuple(t *testing.T) {
	p := compile(t, `
fun main(n: word) -> word {
  let st = (0, 1);
  while (n > 0) {
    let st = (st.1, st.0 + st.1);
    let n = n - 1;
  }
  st.0
}`)
	// Fibonacci: after 10 iterations st.0 = fib(10) = 55.
	if got := run(t, p, nil, 10); got[0] != 55 {
		t.Fatalf("fib = %d", got[0])
	}
}

func TestCtxSwapNoop(t *testing.T) {
	p := compile(t, `fun main(a: word) -> word { ctx_swap(); a }`)
	if got := run(t, p, nil, 4); got[0] != 4 {
		t.Fatalf("got %d", got[0])
	}
}

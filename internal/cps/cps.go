// Package cps defines the continuation-passing-style intermediate
// representation of the Nova compiler (§4 of the paper).
//
// The IR is first-order: CPS conversion resolves every call target to a
// known label by inlining all non-tail calls (de-proceduralization,
// §4.3) and specializing tail-called functions per instantiation of
// their label-valued parameters (return continuations, exception
// handlers, and function arguments). Every variable is bound exactly
// once (SSA by construction, §4.2) — CPS expresses SSA directly, with
// continuation parameters playing the role of phi-nodes.
//
// The IR has no aggregate values: records and tuples were flattened by
// the converter; every variable corresponds to a single machine word.
package cps

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Var is a CPS temporary. Each Var is bound exactly once.
type Var int

// Label names a function or continuation.
type Label int

// Value is an operand: a Var or a Const.
type Value interface{ value() }

// Const is an immediate 32-bit word.
type Const uint32

func (Var) value()   {}
func (Const) value() {}

// Space identifies a memory or I/O space for aggregate transfers.
type Space int

// Memory spaces. SRAM and Scratch move data through the L (read) and
// S (write) transfer banks; SDRAM through LD and SD; the FIFOs behave
// like their respective memory classes.
const (
	SpaceSRAM Space = iota
	SpaceSDRAM
	SpaceScratch
	SpaceRFIFO
	SpaceTFIFO
)

var spaceNames = [...]string{"sram", "sdram", "scratch", "rfifo", "tfifo"}

func (s Space) String() string { return spaceNames[s] }

// SpecialKind identifies a non-memory hardware operation.
type SpecialKind int

// Special operations.
const (
	SpecHash     SpecialKind = iota // dst(L) = hash(src(S)); same register number
	SpecBTS                         // dst(L) = bit_test_set(addr, src(S)); same register number
	SpecCSRRead                     // dst(L) = csr(addr)
	SpecCSRWrite                    // csr(addr) = src(S)
	SpecCtxSwap                     // voluntary context swap
)

var specialNames = [...]string{"hash", "bts", "csr_rd", "csr_wr", "ctx_swap"}

func (k SpecialKind) String() string { return specialNames[k] }

// Term is the body of a CPS function: a tree of bindings ending in a
// transfer of control.
type Term interface{ term() }

// Arith binds Dst to a word operation: dst = l op r.
type Arith struct {
	Op   ast.BinOp
	L, R Value
	Dst  Var
	K    Term
}

// MemRead reads an aggregate of len(Dsts) consecutive words from
// memory into the read-side transfer bank of Space.
type MemRead struct {
	Space Space
	Addr  Value
	Dsts  []Var
	K     Term
}

// MemWrite writes an aggregate of len(Srcs) consecutive words from the
// write-side transfer bank of Space to memory.
type MemWrite struct {
	Space Space
	Addr  Value
	Srcs  []Value
	K     Term
}

// Special performs a non-memory hardware operation.
type Special struct {
	Kind SpecialKind
	Args []Value
	Dsts []Var
	K    Term
}

// Clone binds Dst as a clone of Src (§4.5, §10): semantically a copy,
// but clones of the same variable do not interfere, so the register
// allocator may — but need not — give them distinct locations.
type Clone struct {
	Src Var
	Dst Var
	K   Term
}

// If branches on a word comparison. Cmp is one of the comparison
// operators; booleans are encoded as control flow (§4.1).
type If struct {
	Cmp  ast.BinOp
	L, R Value
	Then Term
	Else Term
}

// App transfers control to a known label, binding its parameters to
// Args. This is the only form of call or jump.
type App struct {
	F    Label
	Args []Value
}

// Halt ends the program, yielding Results.
type Halt struct {
	Results []Value
}

func (*Arith) term()    {}
func (*MemRead) term()  {}
func (*MemWrite) term() {}
func (*Special) term()  {}
func (*Clone) term()    {}
func (*If) term()       {}
func (*App) term()      {}
func (*Halt) term()     {}

// FunKind distinguishes source functions from compiler-introduced
// continuations in diagnostics.
type FunKind int

// Function kinds.
const (
	KindFun  FunKind = iota // instantiation of a source function
	KindCont                // join point / return continuation
	KindLoop                // loop header
)

// Fun is one first-order CPS function.
type Fun struct {
	Label  Label
	Name   string
	Kind   FunKind
	Params []Var
	Body   Term
}

// Program is a whole CPS program.
type Program struct {
	Funs    map[Label]*Fun
	Entry   Label
	names   map[Var]string
	nextVar Var
	nextLab Label
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Funs: map[Label]*Fun{}, names: map[Var]string{}}
}

// NewVar allocates a fresh temporary with a debug name.
func (p *Program) NewVar(name string) Var {
	v := p.nextVar
	p.nextVar++
	p.names[v] = name
	return v
}

// NewLabel allocates a fresh label.
func (p *Program) NewLabel() Label {
	l := p.nextLab
	p.nextLab++
	return l
}

// NumVars returns the number of allocated temporaries.
func (p *Program) NumVars() int { return int(p.nextVar) }

// VarName returns the debug name of v.
func (p *Program) VarName(v Var) string {
	if n := p.names[v]; n != "" {
		return fmt.Sprintf("%s.%d", n, v)
	}
	return fmt.Sprintf("t%d", v)
}

// AddFun registers f.
func (p *Program) AddFun(f *Fun) { p.Funs[f.Label] = f }

// FormatValue renders an operand.
func (p *Program) FormatValue(v Value) string {
	switch v := v.(type) {
	case Var:
		return p.VarName(v)
	case Const:
		if v > 9 {
			return fmt.Sprintf("0x%x", uint32(v))
		}
		return fmt.Sprintf("%d", uint32(v))
	}
	return "?"
}

func (p *Program) formatValues(vs []Value) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = p.FormatValue(v)
	}
	return strings.Join(parts, ", ")
}

func (p *Program) formatVars(vs []Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = p.VarName(v)
	}
	return strings.Join(parts, ", ")
}

// String renders the whole program in a readable form, entry first,
// then remaining functions in label order.
func (p *Program) String() string {
	var labels []Label
	for l := range p.Funs {
		if l != p.Entry {
			labels = append(labels, l)
		}
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	var b strings.Builder
	if f, ok := p.Funs[p.Entry]; ok {
		p.writeFun(&b, f)
	}
	for _, l := range labels {
		p.writeFun(&b, p.Funs[l])
	}
	return b.String()
}

func (p *Program) writeFun(b *strings.Builder, f *Fun) {
	fmt.Fprintf(b, "L%d %s(%s):\n", f.Label, f.Name, p.formatVars(f.Params))
	p.writeTerm(b, f.Body, 1)
}

func indent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func (p *Program) writeTerm(b *strings.Builder, t Term, depth int) {
	indent(b, depth)
	switch t := t.(type) {
	case *Arith:
		fmt.Fprintf(b, "%s = %s %s %s\n", p.VarName(t.Dst),
			p.FormatValue(t.L), t.Op, p.FormatValue(t.R))
		p.writeTerm(b, t.K, depth)
	case *MemRead:
		fmt.Fprintf(b, "(%s) = %s[%d](%s)\n", p.formatVars(t.Dsts),
			t.Space, len(t.Dsts), p.FormatValue(t.Addr))
		p.writeTerm(b, t.K, depth)
	case *MemWrite:
		fmt.Fprintf(b, "%s(%s) <- (%s)\n", t.Space,
			p.FormatValue(t.Addr), p.formatValues(t.Srcs))
		p.writeTerm(b, t.K, depth)
	case *Special:
		fmt.Fprintf(b, "(%s) = %s(%s)\n", p.formatVars(t.Dsts),
			t.Kind, p.formatValues(t.Args))
		p.writeTerm(b, t.K, depth)
	case *Clone:
		fmt.Fprintf(b, "%s = clone(%s)\n", p.VarName(t.Dst), p.VarName(t.Src))
		p.writeTerm(b, t.K, depth)
	case *If:
		fmt.Fprintf(b, "if %s %s %s\n", p.FormatValue(t.L), t.Cmp, p.FormatValue(t.R))
		indent(b, depth)
		b.WriteString("then:\n")
		p.writeTerm(b, t.Then, depth+1)
		indent(b, depth)
		b.WriteString("else:\n")
		p.writeTerm(b, t.Else, depth+1)
	case *App:
		fmt.Fprintf(b, "goto L%d(%s)\n", t.F, p.formatValues(t.Args))
	case *Halt:
		fmt.Fprintf(b, "halt(%s)\n", p.formatValues(t.Results))
	default:
		fmt.Fprintf(b, "?%T\n", t)
	}
}

// Successors returns the labels a term can transfer control to.
func Successors(t Term) []Label {
	var out []Label
	var walk func(Term)
	walk = func(t Term) {
		switch t := t.(type) {
		case *Arith:
			walk(t.K)
		case *MemRead:
			walk(t.K)
		case *MemWrite:
			walk(t.K)
		case *Special:
			walk(t.K)
		case *Clone:
			walk(t.K)
		case *If:
			walk(t.Then)
			walk(t.Else)
		case *App:
			out = append(out, t.F)
		case *Halt:
		}
	}
	walk(t)
	return out
}

// Cont returns the linear continuation of a binding term, or nil for
// control terms.
func Cont(t Term) Term {
	switch t := t.(type) {
	case *Arith:
		return t.K
	case *MemRead:
		return t.K
	case *MemWrite:
		return t.K
	case *Special:
		return t.K
	case *Clone:
		return t.K
	}
	return nil
}

// SetCont replaces the linear continuation of a binding term.
func SetCont(t Term, k Term) {
	switch t := t.(type) {
	case *Arith:
		t.K = k
	case *MemRead:
		t.K = k
	case *MemWrite:
		t.K = k
	case *Special:
		t.K = k
	case *Clone:
		t.K = k
	default:
		panic(fmt.Sprintf("cps: SetCont on control term %T", t))
	}
}

// Defs returns the variables bound by one binding term.
func Defs(t Term) []Var {
	switch t := t.(type) {
	case *Arith:
		return []Var{t.Dst}
	case *MemRead:
		return t.Dsts
	case *Special:
		return t.Dsts
	case *Clone:
		return []Var{t.Dst}
	}
	return nil
}

// Uses returns the operand values of a term (not recursing into
// continuations).
func Uses(t Term) []Value {
	switch t := t.(type) {
	case *Arith:
		return []Value{t.L, t.R}
	case *MemRead:
		return []Value{t.Addr}
	case *MemWrite:
		return append([]Value{t.Addr}, t.Srcs...)
	case *Special:
		return t.Args
	case *Clone:
		return []Value{t.Src}
	case *If:
		return []Value{t.L, t.R}
	case *App:
		return t.Args
	case *Halt:
		return t.Results
	}
	return nil
}

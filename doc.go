// Package repro is a from-scratch reproduction of "Taming the IXP
// Network Processor" (George & Blume, PLDI 2003): the Nova language,
// its CPS-based compiler with an ILP back end for combined register-
// bank assignment, aggregate coloring, spilling and cloning, the
// LP/MIP solver substrate, and a cycle-level IXP1200 micro-engine
// simulator.
//
// The package itself holds the benchmark harness (bench_test.go) that
// regenerates the paper's tables and figures; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-vs-measured results.
package repro

package repro

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mip"
	"repro/internal/nova"
	"repro/internal/obs"
	"repro/internal/pktgen"
	"repro/internal/workloads"
)

// natRun compiles the NAT workload with the given allocator options,
// runs one translated packet through the IXP simulator, and returns
// the checksum result, the rewritten SDRAM image, and the cycle count.
func natRun(t *testing.T, alloc func(*nova.Options)) (uint32, []uint32, int64) {
	t.Helper()
	opts := nova.DefaultOptions()
	opts.MIP = &mip.Options{Time: 2 * time.Minute}
	if alloc != nil {
		alloc(&opts)
	}
	comp, err := nova.Compile("nat.nova", workloads.NATSource, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := newMachine(1)
	m.Load(comp.Asm)
	regs, err := comp.EntryRegs()
	if err != nil {
		t.Fatal(err)
	}
	words := pktgen.BuildIPv6TCP(7, 64)
	copy(m.SDRAM[0x100:], words)
	if err := m.SetArgs(0, regs, []uint32{0x100, 0x8000, 8}); err != nil {
		t.Fatal(err)
	}
	st, err := m.Run(100_000_000)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return st.Results[0][0], append([]uint32(nil), m.SDRAM...), st.Cycles
}

// TestFailsafePipelineEndToEnd is the PR's acceptance check (DESIGN.md
// §10): with fault injection forcing a worker panic AND an LP refactor
// failure, and separately with the ILP replaced by the greedy fallback
// allocator, the compiled NAT workload must produce exactly the packet
// results of the clean ILP compile — the fallback merely pays more
// cycles.
func TestFailsafePipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("three full compiles of the NAT workload")
	}
	wantRet, wantMem, ilpCycles := natRun(t, nil)

	// Faults on the ILP path: one injected worker panic and one
	// injected refactor failure, both recovered inside the solvers.
	plan, err := fault.Parse("mip/worker_panic@1,lp/refactor_fail@1")
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(plan)
	base := obs.TakeSnapshot()
	gotRet, gotMem, _ := natRun(t, nil)
	fault.Reset()
	d := obs.Since(base)
	if d["mip/recovered_panics"] < 1 || d["lp/refactor_retries"] < 1 {
		t.Fatalf("fault recovery counters missing: recovered_panics=%d refactor_retries=%d (%v)",
			d["mip/recovered_panics"], d["lp/refactor_retries"], d)
	}
	if gotRet != wantRet {
		t.Fatalf("fault-injected compile result %#x, ILP result %#x", gotRet, wantRet)
	}
	for i := range wantMem {
		if gotMem[i] != wantMem[i] {
			t.Fatalf("fault-injected compile sdram[%#x] = %#x, ILP %#x", i, gotMem[i], wantMem[i])
		}
	}

	// Greedy fallback path: identical packet semantics, more cycles.
	base = obs.TakeSnapshot()
	fbRet, fbMem, fbCycles := natRun(t, func(o *nova.Options) { o.Alloc.Fallback = core.FallbackForce })
	if d := obs.Since(base); d["alloc/fallback"] < 1 {
		t.Fatalf("alloc/fallback = %d, want >= 1", d["alloc/fallback"])
	}
	if fbRet != wantRet {
		t.Fatalf("fallback compile result %#x, ILP result %#x", fbRet, wantRet)
	}
	for i := range wantMem {
		if fbMem[i] != wantMem[i] {
			t.Fatalf("fallback compile sdram[%#x] = %#x, ILP %#x", i, fbMem[i], wantMem[i])
		}
	}
	if fbCycles < ilpCycles {
		t.Fatalf("fallback cycles %d < ILP cycles %d; greedy allocation should not be faster", fbCycles, ilpCycles)
	}
	t.Logf("NAT: ILP %d cycles, greedy fallback %d cycles (+%.1f%%)",
		ilpCycles, fbCycles, 100*float64(fbCycles-ilpCycles)/float64(ilpCycles))
}
